#include "storage/block_log.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>

#include "storage/crc32.hpp"
#include "support/log.hpp"

namespace dlt::storage {

namespace {

constexpr std::uint32_t kFrameMagic = 0xD17B10C5u;
constexpr std::uint64_t kSegmentMagic = 0x44'4C'54'4C'4F'47'30'31ULL;  // DLTLOG01
constexpr std::uint32_t kSegmentVersion = 1;

void put_u32(Byte* p, std::uint32_t v) {
  p[0] = static_cast<Byte>(v);
  p[1] = static_cast<Byte>(v >> 8);
  p[2] = static_cast<Byte>(v >> 16);
  p[3] = static_cast<Byte>(v >> 24);
}

std::uint32_t get_u32(const Byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(Byte* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const Byte* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::uint32_t frame_crc(RecordType type, const Hash256& key,
                        ByteView payload) {
  std::uint32_t crc = crc32_init();
  const Byte t = static_cast<Byte>(type);
  crc = crc32_update(crc, ByteView{&t, 1});
  crc = crc32_update(crc, key.view());
  Byte len[4];
  put_u32(len, static_cast<std::uint32_t>(payload.size()));
  crc = crc32_update(crc, ByteView{len, 4});
  crc = crc32_update(crc, payload);
  return crc32_final(crc);
}

}  // namespace

BlockLog::BlockLog(Options options) : options_(std::move(options)) {
  if (options_.mode == StorageMode::kDisk) {
    assert(!options_.dir.empty());
    std::filesystem::create_directories(options_.dir);
  }
  if (options_.truncate || options_.mode == StorageMode::kMemory)
    open_fresh();
  else
    recover();
}

BlockLog::~BlockLog() { close_segments(); }

std::string BlockLog::segment_path(std::uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.dlog", index);
  return options_.dir + "/" + name;
}

void BlockLog::open_fresh() {
  if (options_.mode == StorageMode::kDisk) remove_segment_files();
  segments_.clear();
  catalog_.clear();
  next_seq_ = 0;
  physical_bytes_ = 0;
  live_bytes_ = 0;
  new_segment();
}

void BlockLog::remove_segment_files() {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 15 && name.rfind("seg-", 0) == 0 &&
        name.find(".dlog") == 10)
      std::filesystem::remove(entry.path(), ec);
  }
}

void BlockLog::new_segment() {
  Segment seg;
  if (options_.mode == StorageMode::kMemory) {
    seg.data.resize(kSegmentHeaderBytes);
    put_u64(seg.data.data(), kSegmentMagic);
    put_u32(seg.data.data() + 8, kSegmentVersion);
    put_u32(seg.data.data() + 12, 0);
  } else {
    const std::string path =
        segment_path(static_cast<std::uint32_t>(segments_.size()));
    seg.file = std::fopen(path.c_str(), "wb+");
    if (!seg.file) {
      DLT_LOG_ERROR("storage: cannot create %s", path.c_str());
      std::abort();
    }
    Byte header[kSegmentHeaderBytes];
    put_u64(header, kSegmentMagic);
    put_u32(header + 8, kSegmentVersion);
    put_u32(header + 12, 0);
    std::fwrite(header, 1, sizeof(header), seg.file);
  }
  segments_.push_back(std::move(seg));
  physical_bytes_ += kSegmentHeaderBytes;
}

void BlockLog::rotate_if_needed(std::size_t frame_bytes) {
  // Rotation is pure arithmetic on appended bytes: a frame that would push
  // a non-header-only segment past segment_bytes starts the next one.
  // Oversized frames land alone in their own segment.
  const Segment& cur = segments_.back();
  if (cur.bytes > kSegmentHeaderBytes &&
      cur.bytes + frame_bytes > options_.segment_bytes)
    new_segment();
}

void BlockLog::append_frame(RecordType type, const Hash256& key,
                            ByteView payload) {
  const std::size_t frame_bytes = frame_size(payload.size());
  rotate_if_needed(frame_bytes);
  Segment& seg = segments_.back();

  Byte head[kFrameOverhead];
  put_u32(head, kFrameMagic);
  head[4] = static_cast<Byte>(type);
  std::memcpy(head + 5, key.data(), 32);
  put_u32(head + 37, static_cast<std::uint32_t>(payload.size()));
  put_u32(head + 41, frame_crc(type, key, payload));

  if (options_.mode == StorageMode::kMemory) {
    seg.data.insert(seg.data.end(), head, head + sizeof(head));
    seg.data.insert(seg.data.end(), payload.begin(), payload.end());
  } else {
    std::fseek(seg.file, 0, SEEK_END);
    std::fwrite(head, 1, sizeof(head), seg.file);
    if (!payload.empty())
      std::fwrite(payload.data(), 1, payload.size(), seg.file);
    seg.dirty = true;
  }
  seg.bytes += frame_bytes;
  physical_bytes_ += frame_bytes;
}

void BlockLog::append(RecordType type, const Hash256& key, ByteView payload) {
  assert(type != RecordType::kTombstone);
  const CatalogKey ck{type, key};
  const std::size_t frame_bytes = frame_size(payload.size());

  // Record where this frame will start *after* any rotation.
  rotate_if_needed(frame_bytes);
  const std::uint32_t segment =
      static_cast<std::uint32_t>(segments_.size() - 1);
  const std::uint64_t offset = segments_.back().bytes;
  append_frame(type, key, payload);

  auto [it, inserted] = catalog_.try_emplace(ck);
  if (!inserted) live_bytes_ -= frame_size(it->second.payload_len);
  it->second = Entry{segment, offset,
                     static_cast<std::uint32_t>(payload.size()), next_seq_++};
  live_bytes_ += frame_bytes;
}

bool BlockLog::erase(RecordType type, const Hash256& key) {
  const auto it = catalog_.find(CatalogKey{type, key});
  if (it == catalog_.end()) return false;
  live_bytes_ -= frame_size(it->second.payload_len);
  catalog_.erase(it);
  const Byte target = static_cast<Byte>(type);
  append_frame(RecordType::kTombstone, key, ByteView{&target, 1});
  return true;
}

bool BlockLog::contains(RecordType type, const Hash256& key) const {
  return catalog_.count(CatalogKey{type, key}) > 0;
}

Bytes BlockLog::read_at(const Entry& e) const {
  const Segment& seg = segments_[e.segment];
  Bytes out(e.payload_len);
  const std::uint64_t payload_offset = e.offset + kFrameOverhead;
  if (options_.mode == StorageMode::kMemory) {
    std::memcpy(out.data(), seg.data.data() + payload_offset, e.payload_len);
  } else {
    std::fseek(seg.file, static_cast<long>(payload_offset), SEEK_SET);
    const std::size_t got = std::fread(out.data(), 1, e.payload_len, seg.file);
    assert(got == e.payload_len);
    (void)got;
  }
  return out;
}

std::optional<Bytes> BlockLog::read(RecordType type, const Hash256& key) const {
  const auto it = catalog_.find(CatalogKey{type, key});
  if (it == catalog_.end()) return std::nullopt;
  return read_at(it->second);
}

void BlockLog::for_each(const std::function<void(RecordType, const Hash256&,
                                                 ByteView)>& fn) const {
  std::vector<const std::pair<const CatalogKey, Entry>*> live;
  live.reserve(catalog_.size());
  for (const auto& kv : catalog_) live.push_back(&kv);
  std::sort(live.begin(), live.end(), [](const auto* a, const auto* b) {
    return a->second.seq < b->second.seq;
  });
  for (const auto* kv : live) {
    const Bytes payload = read_at(kv->second);
    fn(kv->first.type, kv->first.key, payload);
  }
}

std::uint64_t BlockLog::compact() {
  const std::uint64_t before = physical_bytes_;

  // Snapshot the live set in append-sequence order (deterministic), then
  // rebuild fresh segments from it.
  struct Live {
    RecordType type;
    Hash256 key;
    Bytes payload;
    std::uint64_t seq;
  };
  std::vector<Live> live;
  live.reserve(catalog_.size());
  for (const auto& [ck, e] : catalog_)
    live.push_back(Live{ck.type, ck.key, read_at(e), e.seq});
  std::sort(live.begin(), live.end(),
            [](const Live& a, const Live& b) { return a.seq < b.seq; });

  close_segments();
  open_fresh();
  for (const Live& rec : live) append(rec.type, rec.key, rec.payload);

  return before - physical_bytes_;
}

void BlockLog::sync() {
  if (options_.mode == StorageMode::kMemory) return;
  for (Segment& seg : segments_) {
    if (!seg.dirty || !seg.file) continue;
    std::fflush(seg.file);
    seg.dirty = false;
  }
}

void BlockLog::close_segments() {
  for (Segment& seg : segments_) {
    if (seg.file) {
      std::fclose(seg.file);
      seg.file = nullptr;
    }
  }
}

void BlockLog::recover() {
  segments_.clear();
  catalog_.clear();
  next_seq_ = 0;
  physical_bytes_ = 0;
  live_bytes_ = 0;
  recovered_records_ = 0;
  truncated_tail_bytes_ = 0;

  for (std::uint32_t index = 0;; ++index) {
    const std::string path = segment_path(index);
    std::FILE* file = std::fopen(path.c_str(), "rb+");
    if (!file) break;

    std::fseek(file, 0, SEEK_END);
    const long file_size = std::ftell(file);
    Bytes data(static_cast<std::size_t>(file_size > 0 ? file_size : 0));
    std::fseek(file, 0, SEEK_SET);
    if (!data.empty()) {
      const std::size_t got = std::fread(data.data(), 1, data.size(), file);
      data.resize(got);
    }

    Segment seg;
    seg.file = file;
    std::uint64_t used = kSegmentHeaderBytes;
    bool torn = false;
    if (data.size() < kSegmentHeaderBytes ||
        get_u64(data.data()) != kSegmentMagic) {
      // A segment whose header never made it to disk holds nothing
      // recoverable; rewrite the header and keep it as the tail.
      std::fseek(file, 0, SEEK_SET);
      Byte header[kSegmentHeaderBytes];
      put_u64(header, kSegmentMagic);
      put_u32(header + 8, kSegmentVersion);
      put_u32(header + 12, 0);
      std::fwrite(header, 1, sizeof(header), file);
      torn = true;
    } else {
      std::uint64_t pos = kSegmentHeaderBytes;
      while (pos + kFrameOverhead <= data.size()) {
        const Byte* p = data.data() + pos;
        if (get_u32(p) != kFrameMagic) {
          torn = true;
          break;
        }
        const RecordType type = static_cast<RecordType>(p[4]);
        const Hash256 key = Hash256::from_view(ByteView{p + 5, 32});
        const std::uint32_t len = get_u32(p + 37);
        const std::uint32_t crc = get_u32(p + 41);
        if (pos + kFrameOverhead + len > data.size()) {
          torn = true;  // partial payload: the append was cut short
          break;
        }
        const ByteView payload{p + kFrameOverhead, len};
        if (frame_crc(type, key, payload) != crc) {
          torn = true;  // bit rot or a torn multi-part write
          break;
        }
        if (type == RecordType::kTombstone) {
          if (len == 1)
            catalog_.erase(CatalogKey{static_cast<RecordType>(payload[0]),
                                      key});
        } else {
          catalog_[CatalogKey{type, key}] =
              Entry{index, pos, len, next_seq_++};
        }
        pos += kFrameOverhead + len;
      }
      used = pos;
      if (pos < data.size()) torn = true;
    }

    if (torn) {
      if (data.size() > used) truncated_tail_bytes_ += data.size() - used;
      std::fflush(file);
      // Drop the torn tail so future appends start from a clean frame
      // boundary.
      if (data.size() != used) {
        std::error_code ec;
        std::filesystem::resize_file(path, used, ec);
      }
    }
    seg.bytes = used;
    physical_bytes_ += used;
    segments_.push_back(std::move(seg));
    if (torn) break;  // anything after a torn segment is unreachable
  }

  if (segments_.empty()) {
    open_fresh();
    return;
  }

  // Live bytes + seq renumbering: walk the catalog once.
  for (const auto& [ck, e] : catalog_)
    live_bytes_ += frame_size(e.payload_len);
  recovered_records_ = catalog_.size();
}

}  // namespace dlt::storage
