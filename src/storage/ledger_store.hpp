// LedgerStore: the per-ledger-instance bundle of block log + state
// backend, plus the storage.* observability gauges.
//
// A cluster builds one LedgerStore per node (instance names like
// "chain-s7/node0") and hands it to the ledger via attach_store(). The
// ledger writes through at its commit points; commit() refreshes the
// gauges so every BENCH_*.json carries
//   storage.log_bytes    — block-log physical bytes (== file bytes on disk)
//   storage.state_bytes  — state-arena physical bytes
//   storage.segments     — log segment count
//   storage.pruned_bytes — cumulative bytes reclaimed by pruning
// with identical values in memory and disk mode (the determinism
// contract: all accounting is mode-independent arithmetic).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/probe.hpp"
#include "storage/block_log.hpp"
#include "storage/config.hpp"
#include "storage/state_backend.hpp"

namespace dlt::storage {

class LedgerStore {
 public:
  /// `instance` becomes the subdirectory under config.path in disk mode;
  /// truncate=false reopens whatever that directory holds (recovery).
  LedgerStore(const StorageConfig& config, const std::string& instance,
              bool truncate = true);

  BlockLog& log() { return *log_; }
  const BlockLog& log() const { return *log_; }
  StateBackend& state() { return *state_; }
  const StateBackend& state() const { return *state_; }

  const StorageConfig& config() const { return config_; }
  bool disk() const { return config_.mode == StorageMode::kDisk; }
  /// Instance directory ("" in memory mode).
  const std::string& dir() const { return dir_; }

  /// Resolves the storage.* gauges against `probe` (prefix-aware).
  void attach_probe(const obs::Probe& probe);

  /// Credits reclaimed bytes to the pruned_bytes gauge (called by the
  /// ledgers' pruning paths with compact() results).
  void note_pruned(std::uint64_t bytes) { pruned_bytes_ += bytes; }
  std::uint64_t pruned_bytes() const { return pruned_bytes_; }

  std::uint64_t log_bytes() const { return log_->physical_bytes(); }
  std::uint64_t state_bytes() const { return state_->physical_bytes(); }

  /// Refreshes the gauges; with config.sync_on_commit also flushes the
  /// log and msyncs the arena. Cheap enough to call per block commit.
  void commit();

 private:
  StorageConfig config_;
  std::string dir_;
  std::unique_ptr<BlockLog> log_;
  std::unique_ptr<StateBackend> state_;
  std::uint64_t pruned_bytes_ = 0;

  obs::Gauge* g_log_bytes_ = nullptr;
  obs::Gauge* g_state_bytes_ = nullptr;
  obs::Gauge* g_segments_ = nullptr;
  obs::Gauge* g_pruned_bytes_ = nullptr;
};

}  // namespace dlt::storage
