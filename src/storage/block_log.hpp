// Append-only segmented record log with a ranged catalog.
//
// The log is the durable half of every ledger: chain block headers/bodies,
// account state deltas, lattice blocks and tangle sites are appended as
// typed, keyed, CRC-protected records. Records are never overwritten in
// place — an upsert appends a fresh frame (the old one becomes dead
// weight), an erase appends a tombstone — and `compact()` rewrites the
// live set to reclaim the difference, which is exactly how the paper's
// pruning disciplines (§V) are realised on disk.
//
// Frame layout (45-byte overhead + payload):
//   u32 magic | u8 type | 32B key | u32 payload_len | u32 crc | payload
// with crc = CRC-32 over type || key || payload_len || payload. Segments
// start with a 16-byte header and rotate once their appended bytes pass
// `segment_bytes`.
//
// Determinism contract: the catalog, rotation points and every byte
// counter are pure arithmetic over the append sequence, computed
// identically whether frames land in RAM vectors (kMemory) or in
// seg-NNNNNN.dlog files (kDisk). Disk I/O happens synchronously on the
// caller's (sim) thread, so switching modes cannot reorder events.
//
// Reopen (`Options::truncate = false`, disk mode) scans the segment files
// in index order, validates magic + CRC frame by frame, truncates the
// first torn frame (partial append or corrupted bytes) and everything
// after it in that segment, and rebuilds the catalog with last-wins upsert
// and tombstone semantics.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/config.hpp"
#include "support/bytes.hpp"

namespace dlt::storage {

/// Record namespaces: one catalog key is (type, key), so e.g. a block's
/// header and body coexist under the same hash.
enum class RecordType : std::uint8_t {
  kTombstone = 0,  // payload = [target type u8]; kills (target, key)
  kHeader = 1,     // chain block header
  kBody = 2,       // chain block transaction list
  kDelta = 3,      // account-model per-block state delta
  kBlock = 4,      // lattice block
  kSite = 5,       // tangle transaction (site)
};

class BlockLog {
 public:
  struct Options {
    StorageMode mode = StorageMode::kMemory;
    std::string dir;  // disk mode: directory holding seg-NNNNNN.dlog
    std::size_t segment_bytes = 1u << 20;
    /// true = start from an empty log (removing stale segments on disk);
    /// false = recover whatever the directory holds.
    bool truncate = true;
  };

  static constexpr std::size_t kFrameOverhead = 4 + 1 + 32 + 4 + 4;
  static constexpr std::size_t kSegmentHeaderBytes = 16;

  explicit BlockLog(Options options);
  ~BlockLog();

  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;

  /// Upsert: appends a frame and points the catalog at it. A previous
  /// record under (type, key) becomes dead bytes.
  void append(RecordType type, const Hash256& key, ByteView payload);

  /// Appends a tombstone and drops (type, key) from the catalog. Returns
  /// false (and appends nothing) when the record does not exist.
  bool erase(RecordType type, const Hash256& key);

  bool contains(RecordType type, const Hash256& key) const;

  /// Reads a live record's payload back (RAM vector or pread).
  std::optional<Bytes> read(RecordType type, const Hash256& key) const;

  /// Visits every live record in append-sequence order — the replay order
  /// for recovery.
  void for_each(const std::function<void(RecordType, const Hash256&,
                                         ByteView)>& fn) const;

  /// Rewrites the live set (in append-sequence order) into fresh
  /// segments, dropping dead frames and tombstones. Returns the physical
  /// bytes reclaimed.
  std::uint64_t compact();

  /// fsync every dirty segment (disk mode; no-op in memory mode).
  void sync();

  // -- accounting (identical arithmetic in both modes) --
  /// Total bytes the log occupies: segment headers + every appended frame,
  /// live or dead. In disk mode this equals the summed file sizes.
  std::uint64_t physical_bytes() const { return physical_bytes_; }
  std::uint64_t live_bytes() const { return live_bytes_; }
  std::uint64_t dead_bytes() const { return physical_bytes_ - live_bytes_ -
                                            kSegmentHeaderBytes *
                                                segments_.size(); }
  std::size_t segment_count() const { return segments_.size(); }
  std::size_t live_records() const { return catalog_.size(); }

  // -- recovery stats (populated by a truncate=false reopen) --
  std::size_t recovered_records() const { return recovered_records_; }
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  static std::size_t frame_size(std::size_t payload_len) {
    return kFrameOverhead + payload_len;
  }

 private:
  struct CatalogKey {
    RecordType type;
    Hash256 key;
    bool operator==(const CatalogKey&) const = default;
  };
  struct CatalogKeyHash {
    std::size_t operator()(const CatalogKey& k) const noexcept {
      return std::hash<Hash256>{}(k.key) ^
             (static_cast<std::size_t>(k.type) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Entry {
    std::uint32_t segment;
    std::uint64_t offset;  // of the frame within the segment
    std::uint32_t payload_len;
    std::uint64_t seq;  // append sequence, for deterministic iteration
  };
  struct Segment {
    std::uint64_t bytes = kSegmentHeaderBytes;  // header + appended frames
    Bytes data;          // memory mode: the full segment image
    std::FILE* file = nullptr;  // disk mode
    bool dirty = false;
  };

  void open_fresh();
  void recover();
  void rotate_if_needed(std::size_t frame_bytes);
  void new_segment();
  void append_frame(RecordType type, const Hash256& key, ByteView payload);
  Bytes read_at(const Entry& e) const;
  void close_segments();
  void remove_segment_files();
  std::string segment_path(std::uint32_t index) const;

  Options options_;
  std::vector<Segment> segments_;
  std::unordered_map<CatalogKey, Entry, CatalogKeyHash> catalog_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t physical_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::size_t recovered_records_ = 0;
  std::uint64_t truncated_tail_bytes_ = 0;
};

}  // namespace dlt::storage
