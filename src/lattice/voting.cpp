#include "lattice/voting.hpp"

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::lattice {

Hash256 Vote::sighash() const {
  Writer w;
  w.fixed(representative);
  w.fixed(root.account);
  w.fixed(root.previous);
  w.fixed(block);
  w.u64(sequence);
  return crypto::tagged_hash("dlt/lattice-vote",
                             ByteView{w.bytes().data(), w.size()});
}

void Vote::sign(const crypto::KeyPair& key, Rng& rng) {
  representative = key.account_id();
  pubkey = key.public_key();
  signature = key.sign(sighash().view(), rng);
}

bool Vote::verify(crypto::SignatureCache* sigcache) const {
  if (crypto::account_of(pubkey) != representative) return false;
  return crypto::verify_cached(sigcache, pubkey, sighash(), signature);
}

void Election::add_vote(const crypto::AccountId& representative,
                        Amount weight, const BlockHash& candidate,
                        std::uint64_t sequence) {
  auto it = votes_.find(representative);
  if (it != votes_.end() && it->second.sequence >= sequence) return;
  votes_[representative] = RepVote{candidate, weight, sequence};
}

std::optional<std::pair<BlockHash, Amount>> Election::leader() const {
  std::map<BlockHash, Amount> tally;
  for (const auto& [rep, vote] : votes_) tally[vote.candidate] += vote.weight;
  std::optional<std::pair<BlockHash, Amount>> best;
  for (const auto& [candidate, weight] : tally) {
    if (!best || weight > best->second) best = {candidate, weight};
  }
  return best;
}

Amount Election::weight_for(const BlockHash& candidate) const {
  Amount sum = 0;
  for (const auto& [rep, vote] : votes_)
    if (vote.candidate == candidate) sum += vote.weight;
  return sum;
}

Amount Election::total_voted_weight() const {
  Amount sum = 0;
  for (const auto& [rep, vote] : votes_) sum += vote.weight;
  return sum;
}

std::size_t Election::candidate_count() const {
  std::map<BlockHash, bool> seen;
  for (const auto& [rep, vote] : votes_) seen[vote.candidate] = true;
  return seen.size();
}

}  // namespace dlt::lattice
