// The block-lattice ledger: per-account chains, pending (unsettled) sends,
// representative weights, fork detection, rollback and pruning
// (paper §II-B, §III-B, §IV-B, §V-B).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/validation.hpp"
#include "lattice/block.hpp"
#include "obs/parallel.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace dlt::lattice {

struct LatticeParams {
  /// Anti-spam hashcash difficulty in leading zero bits (paper §III-B).
  int work_bits = 8;
  bool verify_work = true;
  /// Fraction of total voting weight required to confirm a block
  /// (paper §IV-B: "majority of votes").
  double vote_quorum = 0.5;
  /// Election timeout before a conflict is decided on current tallies.
  double election_duration = 4.0;
};

/// An in-flight transfer: a send whose receive has not yet happened --
/// "funds are pending in the network... transactions are deemed unsettled"
/// (paper §II-B, Fig. 3).
struct PendingInfo {
  crypto::AccountId source;
  crypto::AccountId destination;
  Amount amount = 0;
};

struct AccountInfo {
  /// Stored blocks; the block at chain[i] has height pruned_below + i.
  /// Pruning (§V-B) drops leading history while heights stay stable.
  std::vector<LatticeBlock> chain;
  std::uint32_t cemented_height = 0;  // blocks [0, cemented) irreversible
  std::uint32_t pruned_below = 0;     // heights below this are pruned

  const LatticeBlock& head() const { return chain.back(); }
  std::uint32_t height() const {
    return pruned_below + static_cast<std::uint32_t>(chain.size());
  }
  const LatticeBlock* block_at(std::uint32_t h) const {
    if (h < pruned_below || h >= height()) return nullptr;
    return &chain[h - pruned_below];
  }
};

class Ledger {
 public:
  Ledger(LatticeParams params, const crypto::AccountId& genesis_account,
         const crypto::AccountId& genesis_representative, Amount supply);

  const LatticeParams& params() const { return params_; }
  const LatticeBlock& genesis() const { return genesis_; }
  Amount supply() const { return supply_; }

  /// Validates and applies a block. Error codes of note:
  ///  "fork"         -- a different block already occupies this root
  ///  "gap-previous" -- predecessor unknown (paper §IV-B: a missing block
  ///                    makes the network ignore its successors)
  ///  "gap-source"   -- receive references an unknown send
  Status process(const LatticeBlock& block);

  /// Shared signature-verification cache used by process(); typically one
  /// per cluster (crypto/sigcache.hpp). May be null.
  void set_sigcache(std::shared_ptr<crypto::SignatureCache> cache) {
    sigcache_ = std::move(cache);
  }
  crypto::SignatureCache* sigcache() const { return sigcache_.get(); }

  /// Thread pool the parallel-validation pipeline shards stateless checks
  /// (signature + hashcash) across. Null = serial.
  void set_verify_pool(std::shared_ptr<support::ThreadPool> pool) {
    verify_pool_ = std::move(pool);
  }
  /// Switches process() to the sharded pipeline: the two stateless checks
  /// of a block run across the verify pool and validate() consumes the
  /// joined verdict. No-op without a pool; either setting yields
  /// byte-identical ledger state and traces for a given input sequence.
  void set_parallel_validation(bool on) { parallel_validation_ = on; }
  bool parallel_validation() const {
    return parallel_validation_ && verify_pool_ != nullptr;
  }
  /// Wires the `parallel.validate.*` pipeline metrics. May be null.
  void set_metrics(obs::MetricsRegistry* metrics) {
    pv_.wire(obs::Probe{metrics, nullptr, {}});
  }

  // ---- Queries -----------------------------------------------------------
  const AccountInfo* account(const crypto::AccountId& id) const;
  std::optional<LatticeBlock> find_block(const BlockHash& hash) const;
  bool contains(const BlockHash& hash) const;
  Amount balance_of(const crypto::AccountId& id) const;
  std::optional<BlockHash> head_of(const crypto::AccountId& id) const;
  /// The block currently occupying a root, if any (fork inspection).
  std::optional<LatticeBlock> block_at_root(const Root& root) const;

  std::size_t account_count() const { return accounts_.size(); }
  std::uint64_t block_count() const { return block_count_; }

  /// Visits every account's head (frontier sync, paper (V-B node roles).
  void for_each_head(
      const std::function<void(const crypto::AccountId&, const BlockHash&)>&
          fn) const;

  // ---- Pending / settlement (Fig. 3) --------------------------------------
  const std::unordered_map<BlockHash, PendingInfo>& pending() const {
    return pending_;
  }
  std::vector<std::pair<BlockHash, PendingInfo>> pending_for(
      const crypto::AccountId& destination) const;
  Amount total_pending() const;

  // ---- Voting weight (paper §III-B) ---------------------------------------
  /// "A representative's weight is calculated as the sum of all balances
  /// for accounts that chose this representative."
  Amount weight_of(const crypto::AccountId& representative) const;
  Amount total_weight() const;  // == supply minus pending amounts

  // ---- Conflict resolution support (§IV-B) --------------------------------
  /// Removes `hash` and everything depending on it (later blocks in its
  /// account chain, plus receives of rolled-back sends, recursively).
  /// Refuses to roll back cemented blocks. Returns the removed blocks.
  Result<std::vector<LatticeBlock>> rollback(const BlockHash& hash);

  /// Marks a block (and its ancestors) irreversible -- Nano's
  /// block-cementing (paper §IV-B: "prevent transactions from being rolled
  /// back after a certain period of time").
  Status cement(const BlockHash& hash);
  bool is_cemented(const BlockHash& hash) const;

  // ---- Pruning (§V-B) ------------------------------------------------------
  /// Discards historical blocks, keeping each account's head (and the
  /// balance it carries). Returns bytes reclaimed. "Since the accounts keep
  /// record of account balances... all other historical data can be
  /// discarded."
  std::uint64_t prune_history();

  struct StorageBreakdown {
    std::uint64_t blocks = 0;        // stored lattice blocks
    std::uint64_t pending_table = 0;
    std::uint64_t weight_table = 0;
    std::uint64_t total() const {
      return blocks + pending_table + weight_table;
    }
  };
  StorageBreakdown storage() const;

  /// Invariant check: balances + pending == supply (tests).
  bool conserves_value() const;

 private:
  struct BlockLocation {
    crypto::AccountId account;
    std::uint32_t height = 0;
  };

  /// Joined results of the stateless checks for one block (the shared
  /// single-signature verdict from core/validation.hpp).
  using StatelessVerdict = core::StatelessVerdict;

  /// Runs the stateless checks across the verify pool: the content hash is
  /// memoized and the sigcache probed on the calling (simulation) thread,
  /// workers evaluate only pure functions, and fresh signature successes
  /// enter the cache at the join — exactly where the serial path's
  /// verify_cached would insert them.
  StatelessVerdict compute_verdict(const LatticeBlock& block) const;

  Status validate(const LatticeBlock& block,
                  const StatelessVerdict* verdict = nullptr) const;
  void apply_weight_change(const crypto::AccountId& old_rep, Amount old_bal,
                           const crypto::AccountId& new_rep, Amount new_bal);
  Status rollback_one(const BlockHash& hash,
                      std::vector<LatticeBlock>& removed);

  LatticeParams params_;
  LatticeBlock genesis_;
  Amount supply_;

  std::unordered_map<crypto::AccountId, AccountInfo> accounts_;
  std::unordered_map<BlockHash, BlockLocation> locations_;
  std::unordered_map<BlockHash, PendingInfo> pending_;
  // Claimed sends: send hash -> (claiming block hash, original info);
  // needed to restore pending entries on rollback.
  std::unordered_map<BlockHash, std::pair<BlockHash, PendingInfo>> claimed_;
  std::unordered_map<crypto::AccountId, Amount> weights_;
  std::uint64_t block_count_ = 0;
  std::uint64_t pruned_blocks_ = 0;
  std::shared_ptr<crypto::SignatureCache> sigcache_;
  std::shared_ptr<support::ThreadPool> verify_pool_;
  bool parallel_validation_ = false;
  mutable obs::ParallelValidationMetrics pv_;
};

}  // namespace dlt::lattice
