// The block-lattice ledger: per-account chains, pending (unsettled) sends,
// representative weights, fork detection, rollback and pruning
// (paper §II-B, §III-B, §IV-B, §V-B).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/validation.hpp"
#include "lattice/block.hpp"
#include "obs/parallel.hpp"
#include "storage/ledger_store.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace dlt::lattice {

struct LatticeParams {
  /// Anti-spam hashcash difficulty in leading zero bits (paper §III-B).
  int work_bits = 8;
  bool verify_work = true;
  /// Fraction of total voting weight required to confirm a block
  /// (paper §IV-B: "majority of votes").
  double vote_quorum = 0.5;
  /// Election timeout before a conflict is decided on current tallies.
  double election_duration = 4.0;
};

/// An in-flight transfer: a send whose receive has not yet happened --
/// "funds are pending in the network... transactions are deemed unsettled"
/// (paper §II-B, Fig. 3).
struct PendingInfo {
  crypto::AccountId source;
  crypto::AccountId destination;
  Amount amount = 0;
};

struct AccountInfo {
  /// Stored blocks; the block at chain[i] has height pruned_below + i.
  /// Pruning (§V-B) drops leading history while heights stay stable.
  std::vector<LatticeBlock> chain;
  std::uint32_t cemented_height = 0;  // blocks [0, cemented) irreversible
  std::uint32_t pruned_below = 0;     // heights below this are pruned

  const LatticeBlock& head() const { return chain.back(); }
  std::uint32_t height() const {
    return pruned_below + static_cast<std::uint32_t>(chain.size());
  }
  const LatticeBlock* block_at(std::uint32_t h) const {
    if (h < pruned_below || h >= height()) return nullptr;
    return &chain[h - pruned_below];
  }
};

class Ledger {
 public:
  Ledger(LatticeParams params, const crypto::AccountId& genesis_account,
         const crypto::AccountId& genesis_representative, Amount supply);

  const LatticeParams& params() const { return params_; }
  const LatticeBlock& genesis() const { return genesis_; }
  Amount supply() const { return supply_; }

  /// Validates and applies a block. Error codes of note:
  ///  "fork"         -- a different block already occupies this root
  ///  "gap-previous" -- predecessor unknown (paper §IV-B: a missing block
  ///                    makes the network ignore its successors)
  ///  "gap-source"   -- receive references an unknown send
  Status process(const LatticeBlock& block);

  /// Processes a batch of blocks in order, returning one Status per block
  /// (index-aligned). With parallel_state off this is exactly a process()
  /// loop. With it on, blocks are union-found into conflict groups on the
  /// state keys they touch (account, own hash, predecessor, link), groups
  /// are checked concurrently against the frozen pre-batch ledger plus a
  /// group-local overlay, and the passing blocks are committed serially in
  /// batch order — byte-identical statuses and ledger state either way
  /// (proven by tests/state_sharding_test.cpp). Per-block failures keep
  /// the batch's per-item semantics: a bad block is skipped, not fatal.
  std::vector<Status> process_batch(const std::vector<LatticeBlock>& blocks);

  /// Shared signature-verification cache used by process(); typically one
  /// per cluster (crypto/sigcache.hpp). May be null.
  void set_sigcache(std::shared_ptr<crypto::SignatureCache> cache) {
    sigcache_ = std::move(cache);
  }
  crypto::SignatureCache* sigcache() const { return sigcache_.get(); }

  /// Thread pool the parallel-validation pipeline shards stateless checks
  /// (signature + hashcash) across. Null = serial.
  void set_verify_pool(std::shared_ptr<support::ThreadPool> pool) {
    verify_pool_ = std::move(pool);
  }
  /// Switches process() to the sharded pipeline: the two stateless checks
  /// of a block run across the verify pool and validate() consumes the
  /// joined verdict. No-op without a pool; either setting yields
  /// byte-identical ledger state and traces for a given input sequence.
  void set_parallel_validation(bool on) { parallel_validation_ = on; }
  bool parallel_validation() const {
    return parallel_validation_ && verify_pool_ != nullptr;
  }
  /// Shards the stateful phase of process_batch() by conflict groups (see
  /// process_batch). No-op without a pool; implies the verdict pipeline so
  /// group workers never touch the sigcache or a digest cache.
  void set_parallel_state(bool on) { parallel_state_ = on; }
  bool parallel_state() const {
    return parallel_state_ && verify_pool_ != nullptr;
  }
  /// Wires the `parallel.validate.*` / `parallel.state.*` metrics. May be
  /// null.
  void set_metrics(obs::MetricsRegistry* metrics) {
    pv_.wire(obs::Probe{metrics, nullptr, {}});
    ps_.wire(obs::Probe{metrics, nullptr, {}});
  }

  // ---- Queries -----------------------------------------------------------
  const AccountInfo* account(const crypto::AccountId& id) const;
  std::optional<LatticeBlock> find_block(const BlockHash& hash) const;
  bool contains(const BlockHash& hash) const;
  Amount balance_of(const crypto::AccountId& id) const;
  std::optional<BlockHash> head_of(const crypto::AccountId& id) const;
  /// The block currently occupying a root, if any (fork inspection).
  std::optional<LatticeBlock> block_at_root(const Root& root) const;

  std::size_t account_count() const { return accounts_.size(); }
  std::uint64_t block_count() const { return block_count_; }

  /// Visits every account's head (frontier sync, paper (V-B node roles).
  void for_each_head(
      const std::function<void(const crypto::AccountId&, const BlockHash&)>&
          fn) const;

  // ---- Pending / settlement (Fig. 3) --------------------------------------
  const std::unordered_map<BlockHash, PendingInfo>& pending() const {
    return pending_;
  }
  std::vector<std::pair<BlockHash, PendingInfo>> pending_for(
      const crypto::AccountId& destination) const;
  Amount total_pending() const;

  // ---- Voting weight (paper §III-B) ---------------------------------------
  /// "A representative's weight is calculated as the sum of all balances
  /// for accounts that chose this representative."
  Amount weight_of(const crypto::AccountId& representative) const;
  Amount total_weight() const;  // == supply minus pending amounts

  // ---- Conflict resolution support (§IV-B) --------------------------------
  /// Removes `hash` and everything depending on it (later blocks in its
  /// account chain, plus receives of rolled-back sends, recursively).
  /// Refuses to roll back cemented blocks. Returns the removed blocks.
  Result<std::vector<LatticeBlock>> rollback(const BlockHash& hash);

  /// Marks a block (and its ancestors) irreversible -- Nano's
  /// block-cementing (paper §IV-B: "prevent transactions from being rolled
  /// back after a certain period of time").
  Status cement(const BlockHash& hash);
  bool is_cemented(const BlockHash& hash) const;

  // ---- Persistent storage (ISSUE 9) ---------------------------------------
  /// Writes the lattice through to `store`: every applied block is appended
  /// to the log under RecordType::kBlock, the state backend tracks each
  /// account's frontier (head hash + balance — the §V-B "accounts keep
  /// record of account balances" state), rollbacks erase, and
  /// prune_history() becomes a log-catalog compaction. On a fresh store the
  /// genesis block is persisted; on a recovered one existing records are
  /// kept — combine with replay_from_store(). Mode-independent arithmetic:
  /// attaching a store never changes traces or results across modes.
  void attach_store(std::shared_ptr<storage::LedgerStore> store);
  const storage::LedgerStore* store() const { return store_.get(); }

  /// Recovery: decodes every kBlock record in append order and re-offers
  /// it to process(). Append order is admission order, so predecessors and
  /// source sends always precede their dependents. Returns blocks
  /// accepted; duplicates (genesis, already-replayed) are skipped.
  std::size_t replay_from_store();

  // ---- Pruning (§V-B) ------------------------------------------------------
  /// Discards historical blocks, keeping each account's head (and the
  /// balance it carries). Returns bytes reclaimed. "Since the accounts keep
  /// record of account balances... all other historical data can be
  /// discarded."
  std::uint64_t prune_history();

  struct StorageBreakdown {
    std::uint64_t blocks = 0;        // stored lattice blocks
    std::uint64_t pending_table = 0;
    std::uint64_t weight_table = 0;
    std::uint64_t total() const {
      return blocks + pending_table + weight_table;
    }
  };
  StorageBreakdown storage() const;

  /// Invariant check: balances + pending == supply (tests).
  bool conserves_value() const;

 private:
  struct BlockLocation {
    crypto::AccountId account;
    std::uint32_t height = 0;
  };

  /// Joined results of the stateless checks for one block (the shared
  /// single-signature verdict from core/validation.hpp).
  using StatelessVerdict = core::StatelessVerdict;

  /// Runs the stateless checks across the verify pool: the content hash is
  /// memoized and the sigcache probed on the calling (simulation) thread,
  /// workers evaluate only pure functions, and fresh signature successes
  /// enter the cache at the join — exactly where the serial path's
  /// verify_cached would insert them.
  StatelessVerdict compute_verdict(const LatticeBlock& block) const;

  /// The single definition of lattice-block validity, parameterized over
  /// the state view so the serial path (view = the live ledger maps) and
  /// the sharded batch pipeline (view = frozen ledger + group overlay)
  /// cannot diverge: same checks, same error codes, in the same order.
  /// A View provides:
  ///   const LatticeBlock* head_of(account)       — account head or null
  ///   std::optional<AccountId> location_account(hash)
  ///   const PendingInfo* pending(link)           — unclaimed send or null
  ///   bool claimed(link)
  template <typename View>
  Status validate_with(const View& view, const LatticeBlock& block,
                       const StatelessVerdict* verdict) const {
    const bool sig_ok =
        verdict ? verdict->sig_ok : block.verify_signature(sigcache_.get());
    if (!sig_ok) return make_error("bad-signature");
    if (params_.verify_work) {
      const bool work_ok =
          verdict ? verdict->work_ok : block.verify_work(params_.work_bits);
      if (!work_ok)
        return make_error("insufficient-work",
                          "anti-spam hashcash below threshold");
    }

    const LatticeBlock* head = view.head_of(block.account);

    if (block.type == BlockType::kOpen) {
      if (!block.previous.is_zero())
        return make_error("malformed", "open block with a predecessor");
      if (head) return make_error("fork", "account already opened");
      const PendingInfo* pend = view.pending(block.link);
      if (!pend) {
        // Distinguish a never-seen source from an already-claimed one.
        if (view.claimed(block.link)) return make_error("already-claimed");
        return make_error("gap-source", "unknown source send");
      }
      if (!(pend->destination == block.account))
        return make_error("wrong-destination");
      if (block.balance != pend->amount)
        return make_error("bad-balance", "open must equal the pending amount");
      return Status::success();
    }

    if (!head)
      return make_error("gap-previous", "account chain does not exist");
    if (block.previous != head->hash()) {
      const std::optional<crypto::AccountId> loc =
          view.location_account(block.previous);
      if (loc && *loc == block.account)
        return make_error("fork", "a successor already occupies this root");
      return make_error("gap-previous", "predecessor not found");
    }

    switch (block.type) {
      case BlockType::kSend: {
        if (block.link.is_zero())
          return make_error("malformed", "send without destination");
        if (block.balance >= head->balance)
          return make_error("bad-balance", "send must decrease the balance");
        return Status::success();
      }
      case BlockType::kReceive: {
        const PendingInfo* pend = view.pending(block.link);
        if (!pend) {
          if (view.claimed(block.link)) return make_error("already-claimed");
          return make_error("gap-source", "unknown source send");
        }
        if (!(pend->destination == block.account))
          return make_error("wrong-destination");
        if (block.balance != head->balance + pend->amount)
          return make_error("bad-balance",
                            "receive must add exactly the pending amount");
        return Status::success();
      }
      case BlockType::kChange: {
        if (block.balance != head->balance)
          return make_error("bad-balance", "change must keep the balance");
        return Status::success();
      }
      case BlockType::kOpen:
        break;  // handled above
    }
    return make_error("malformed", "unknown block type");
  }

  /// Direct view over the live ledger maps (the serial path).
  struct DirectView {
    const Ledger* l;
    const LatticeBlock* head_of(const crypto::AccountId& id) const;
    std::optional<crypto::AccountId> location_account(
        const BlockHash& hash) const;
    const PendingInfo* pending(const BlockHash& link) const;
    bool claimed(const BlockHash& link) const;
  };

  Status validate(const LatticeBlock& block,
                  const StatelessVerdict* verdict = nullptr) const;
  /// Duplicate check + validate + apply, with an optional pre-computed
  /// verdict (batch pipeline / demoted batches).
  Status process_one(const LatticeBlock& block, const BlockHash& hash,
                     const StatelessVerdict* verdict);
  /// The mutation half of process(): applies an already-validated block.
  void apply_validated(const LatticeBlock& block, const BlockHash& hash);
  void apply_weight_change(const crypto::AccountId& old_rep, Amount old_bal,
                           const crypto::AccountId& new_rep, Amount new_bal);
  /// Store write-through at the apply/rollback commit points.
  void persist_apply(const LatticeBlock& block, const BlockHash& hash);
  void persist_rollback(const LatticeBlock& block, const BlockHash& hash);
  Status rollback_one(const BlockHash& hash,
                      std::vector<LatticeBlock>& removed);

  LatticeParams params_;
  LatticeBlock genesis_;
  Amount supply_;

  std::unordered_map<crypto::AccountId, AccountInfo> accounts_;
  std::unordered_map<BlockHash, BlockLocation> locations_;
  std::unordered_map<BlockHash, PendingInfo> pending_;
  // Claimed sends: send hash -> (claiming block hash, original info);
  // needed to restore pending entries on rollback.
  std::unordered_map<BlockHash, std::pair<BlockHash, PendingInfo>> claimed_;
  std::unordered_map<crypto::AccountId, Amount> weights_;
  std::uint64_t block_count_ = 0;
  std::uint64_t pruned_blocks_ = 0;
  std::shared_ptr<storage::LedgerStore> store_;
  std::shared_ptr<crypto::SignatureCache> sigcache_;
  std::shared_ptr<support::ThreadPool> verify_pool_;
  bool parallel_validation_ = false;
  bool parallel_state_ = false;
  mutable obs::ParallelValidationMetrics pv_;
  mutable obs::ParallelStateMetrics ps_;
};

}  // namespace dlt::lattice
