// Block-lattice blocks (paper §II-B, Fig. 2 & 3).
//
// "A DAG structure stores transactions in nodes, where each node holds a
// single transaction. In Nano, every account is linked to its own
// account-chain... Nodes are appended to an account-chain, each node
// representing a single transaction."
//
// Like Nano's state blocks, every block records the account's *resulting
// balance*, which is what makes §V-B head-only pruning possible, and names
// a representative, which is how voting weight is delegated (§III-B).
// Every block carries a small hashcash work proof as spam protection
// ("similar to Hashcash", §III-B).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/digest_cache.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace dlt::lattice {

using Amount = std::uint64_t;
using BlockHash = Hash256;

enum class BlockType : std::uint8_t {
  kOpen = 0,     // first block of an account chain; claims a pending send
  kSend,         // deducts from the sender (funds become pending, Fig. 3)
  kReceive,      // claims a pending send into this account (Fig. 3)
  kChange,       // re-delegates the representative (paper §III-B)
};

const char* to_string(BlockType t);

struct LatticeBlock {
  BlockType type = BlockType::kSend;
  crypto::AccountId account;      // chain this block belongs to
  BlockHash previous;             // head it builds on (zero for kOpen)
  Amount balance = 0;             // resulting balance of `account`
  /// kSend: destination account. kOpen/kReceive: hash of the matching send
  /// block. kChange: unused (zero).
  Hash256 link;
  crypto::AccountId representative;
  std::uint64_t work = 0;         // anti-spam hashcash nonce
  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  /// Canonical content hash (excludes work + signature, as in Nano).
  /// Memoized: mutating a content field after a call requires an explicit
  /// invalidate_digests(); sign()/solve_work() only touch excluded fields.
  BlockHash hash() const;

  /// Drops the memoized content hash.
  void invalidate_digests() { hash_memo_.invalidate(); }
  /// The payload the anti-spam work must cover: account chain position.
  Bytes work_payload() const;

  Bytes serialize() const;
  /// Inverse of serialize(): the storage codec for the block log. All
  /// fields are fixed-width integers, so the wire form is lossless.
  static Result<LatticeBlock> deserialize(ByteView raw);
  std::size_t serialized_size() const { return kSerializedSize; }
  /// Nano state blocks are 216 bytes on the wire; ours model the same
  /// order: 1 + 32*4 + 8 + 8 + 8 + 16 = 169, padded to Nano's figure.
  static constexpr std::size_t kSerializedSize = 216;

  void sign(const crypto::KeyPair& key, Rng& rng);
  /// A shared crypto::SignatureCache skips repeat verifications.
  bool verify_signature(crypto::SignatureCache* sigcache = nullptr) const;

  /// Solves the anti-spam puzzle in-place (real hashcash).
  void solve_work(int difficulty_bits);
  bool verify_work(int difficulty_bits) const;

  std::string to_short_string() const;

 private:
  crypto::DigestCache hash_memo_;
};

/// The fork-slot identifier: two distinct blocks with the same root are a
/// fork (paper §IV-B: "two transactions may claim the same predecessor").
struct Root {
  crypto::AccountId account;
  BlockHash previous;
  auto operator<=>(const Root&) const = default;
};

}  // namespace dlt::lattice

namespace std {
template <>
struct hash<dlt::lattice::Root> {
  size_t operator()(const dlt::lattice::Root& r) const noexcept {
    return std::hash<dlt::Hash256>{}(r.account) ^
           (std::hash<dlt::Hash256>{}(r.previous) << 1);
  }
};
}  // namespace std
