#include "lattice/node.hpp"

#include <algorithm>
#include <cassert>

#include "obs/latency.hpp"
#include "obs/profile.hpp"
#include "support/log.hpp"

namespace dlt::lattice {
namespace {

// Interned once at static init; per-message paths compare/copy uint32 ids.
const net::MsgType kMsgBlock = net::msg_type("lat-block");
const net::MsgType kMsgVote = net::msg_type("lat-vote");
const net::MsgType kMsgGetBlock = net::msg_type("lat-get-block");
constexpr std::size_t kGetBlockBytes = 40;
const net::MsgType kMsgFrontier = net::msg_type("lat-frontier");

using FrontierList = std::vector<std::pair<crypto::AccountId, BlockHash>>;

Root root_of(const LatticeBlock& block) {
  return Root{block.account, block.previous};
}

}  // namespace

LatticeNode::LatticeNode(net::Network& network, const LatticeParams& params,
                         const crypto::KeyPair& genesis_key, Amount supply,
                         const LatticeNodeConfig& config, Rng rng)
    : net_(network),
      id_(network.add_node()),
      config_(config),
      ledger_(params, genesis_key.account_id(), genesis_key.account_id(),
              supply),
      rng_(std::move(rng)) {
  ledger_.set_sigcache(config_.sigcache);
  ledger_.set_verify_pool(config_.verify_pool);
  ledger_.set_parallel_validation(config_.parallel_validation);
  ledger_.set_parallel_state(config_.parallel_state);
  ledger_.set_metrics(config_.probe.metrics);
  if (config_.store) ledger_.attach_store(config_.store);
  if (config_.probe) {
    obs_blocks_received_ = config_.probe.counter("lattice.blocks_received");
    obs_sends_ = config_.probe.counter("lattice.sends_issued");
    obs_receives_ = config_.probe.counter("lattice.receives_settled");
    obs_votes_cast_ = config_.probe.counter("lattice.votes_cast");
    obs_confirmed_ = config_.probe.counter("lattice.blocks_confirmed");
    obs_elections_ = config_.probe.counter("lattice.elections_started");
    if (config_.solve_work)
      profile_work_ = config_.probe.histogram("profile.lattice_work_us");
  }
  net_.set_handler(id_, [this](const net::Message& m) { handle_message(m); });
}

void LatticeNode::add_account(const crypto::KeyPair& key) {
  account_index_[key.account_id()] = accounts_.size();
  accounts_.push_back(key);
}

const crypto::KeyPair* LatticeNode::representative_key() const {
  return accounts_.empty() ? nullptr : &accounts_.front();
}

void LatticeNode::start() {
  if (config_.role == NodeRole::kCurrent && config_.prune_interval > 0)
    schedule_prune();
  if (config_.role != NodeRole::kLight && config_.frontier_interval > 0)
    schedule_frontier_sync();
}

void LatticeNode::schedule_frontier_sync() {
  net_.simulation().schedule_in(config_.frontier_interval, [this] {
    const auto& peers = net_.neighbors(id_);
    if (!peers.empty())
      send_frontiers(peers[rng_.uniform(peers.size())]);
    schedule_frontier_sync();
  });
}

void LatticeNode::send_frontiers(net::NodeId peer) {
  FrontierList frontiers;
  // Offering every head is fine at simulation scale; a real node pages.
  ledger_.for_each_head(
      [&frontiers](const crypto::AccountId& account, const BlockHash& head) {
        frontiers.emplace_back(account, head);
      });
  net_.send(id_, peer,
            net::make_message(kMsgFrontier, frontiers,
                              frontiers.size() * 64 + 8));
}

void LatticeNode::handle_frontiers(net::NodeId peer,
                                   const FrontierList& frontiers) {
  if (config_.role == NodeRole::kLight) return;
  for (const auto& [account, their_head] : frontiers) {
    const AccountInfo* mine = ledger_.account(account);
    if (ledger_.contains(their_head)) {
      // We know their head. If we are ahead on this chain, push them the
      // successors (bulk pull, bounded per round).
      if (!mine) continue;
      auto loc_height = [&]() -> std::optional<std::uint32_t> {
        auto blk = ledger_.find_block(their_head);
        if (!blk) return std::nullopt;
        // Height lookup: walk from their head forward via block_at.
        for (std::uint32_t h = mine->pruned_below; h < mine->height(); ++h)
          if (mine->block_at(h) && mine->block_at(h)->hash() == their_head)
            return h;
        return std::nullopt;
      }();
      if (!loc_height) continue;
      const std::uint32_t limit =
          std::min(mine->height(), *loc_height + 1 + 32);
      for (std::uint32_t h = *loc_height + 1; h < limit; ++h) {
        const LatticeBlock* b = mine->block_at(h);
        if (!b) break;  // pruned: cannot serve (§V-B)
        net_.send(id_, peer,
                  net::make_message(kMsgBlock, *b, b->serialized_size()));
      }
    } else {
      // Their head is news to us: pull it (gap backfill walks the rest).
      request_block(peer, their_head);
    }
  }
}

void LatticeNode::schedule_prune() {
  net_.simulation().schedule_in(config_.prune_interval, [this] {
    ledger_.prune_history();
    schedule_prune();
  });
}

void LatticeNode::handle_message(const net::Message& msg) {
  if (msg.type == kMsgBlock)
    handle_block(net::payload_as<LatticeBlock>(msg), msg.from);
  else if (msg.type == kMsgVote)
    handle_vote(net::payload_as<Vote>(msg));
  else if (msg.type == kMsgGetBlock)
    serve_block(msg.from, net::payload_as<BlockHash>(msg));
  else if (msg.type == kMsgFrontier)
    handle_frontiers(msg.from, net::payload_as<FrontierList>(msg));
}

void LatticeNode::request_block(net::NodeId peer, const BlockHash& hash) {
  if (peer == net::kNoNode) return;
  net_.send(id_, peer,
            net::make_message(kMsgGetBlock, hash, kGetBlockBytes));
}

void LatticeNode::serve_block(net::NodeId peer, const BlockHash& hash) {
  if (config_.role == NodeRole::kLight) return;
  auto block = ledger_.find_block(hash);
  if (!block) return;  // unknown or pruned (§V-B trade-off)
  net_.send(id_, peer,
            net::make_message(kMsgBlock, *block, block->serialized_size()));
}

void LatticeNode::handle_block(const LatticeBlock& block, net::NodeId from) {
  obs::inc(obs_blocks_received_);
  config_.probe.trace(net_.simulation().now(), obs::EventType::kBlockReceived,
                      id_, static_cast<std::uint64_t>(block.type),
                      obs::trace_id(block.hash()));
  if (config_.role == NodeRole::kLight) {
    // Light nodes hold no ledger (paper §V-B); they only watch for sends
    // addressed to their own accounts so they can receive them.
    if (block.type == BlockType::kSend &&
        account_index_.count(crypto::AccountId(block.link)))
      maybe_auto_receive(block);
    return;
  }
  process_block(block, from);
}

void LatticeNode::process_block(const LatticeBlock& block,
                                net::NodeId from) {
  const BlockHash hash = block.hash();
  if (ledger_.contains(hash)) return;
  if (!first_seen_.count(hash)) first_seen_[hash] = net_.simulation().now();

  Status st = ledger_.process(block);
  if (st.ok()) {
    after_applied(block);
    return;
  }
  const std::string& code = st.error().code;
  if (code == "fork") {
    start_or_join_election(block);
  } else if (code == "gap-previous") {
    gap_previous_[block.previous].push_back(block);
    request_block(from, block.previous);  // backfill the missing ancestor
  } else if (code == "gap-source") {
    gap_source_[block.link].push_back(block);
    request_block(from, block.link);
  } else if (code != "duplicate") {
    DLT_LOG_DEBUG("lattice node %u dropped block (%s)", id_,
                  st.error().to_string().c_str());
  }
}

void LatticeNode::after_applied(const LatticeBlock& block) {
  const BlockHash hash = block.hash();
  candidates_.emplace(hash, block);

  // Representatives vote automatically on blocks they have not seen
  // before (paper §IV-B).
  vote_on(block);

  // Votes that raced ahead of the block.
  auto buffered = vote_buffer_.find(hash);
  if (buffered != vote_buffer_.end()) {
    std::vector<Vote> votes = std::move(buffered->second);
    vote_buffer_.erase(buffered);
    for (const Vote& v : votes) handle_vote(v);
  }

  if (block.type == BlockType::kSend) maybe_auto_receive(block);
  retry_gaps(hash);
}

void LatticeNode::retry_gaps(const BlockHash& now_available) {
  auto run = [this](std::unordered_map<BlockHash,
                                       std::vector<LatticeBlock>>& pool,
                    const BlockHash& key) {
    auto it = pool.find(key);
    if (it == pool.end()) return;
    std::vector<LatticeBlock> blocked = std::move(it->second);
    pool.erase(it);
    for (const LatticeBlock& b : blocked) process_block(b);
  };
  run(gap_previous_, now_available);
  run(gap_source_, now_available);
}

void LatticeNode::vote_on(const LatticeBlock& block) {
  const crypto::KeyPair* rep = representative_key();
  if (!rep) return;
  const Amount weight = ledger_.weight_of(rep->account_id());
  if (weight == 0) return;

  Vote vote;
  vote.root = root_of(block);
  vote.block = block.hash();
  vote.sequence = vote_sequence_++;
  vote.sign(*rep, rng_);

  obs::inc(obs_votes_cast_);
  config_.probe.trace(net_.simulation().now(), obs::EventType::kVoteCast, id_,
                      vote.sequence, obs::trace_id(vote.block));

  handle_vote(vote);  // tally our own vote immediately
  net_.gossip(id_, net::make_message(kMsgVote, vote, Vote::kSerializedSize));
}

void LatticeNode::handle_vote(const Vote& vote) {
  if (config_.role == NodeRole::kLight) return;
  if (!vote.verify(config_.sigcache.get())) return;
  const Amount weight = ledger_.weight_of(vote.representative);
  if (weight == 0) return;

  const bool known_block =
      ledger_.contains(vote.block) || candidates_.count(vote.block);
  if (!known_block) {
    vote_buffer_[vote.block].push_back(vote);
    return;
  }

  tally_confirmation(vote.block, vote);

  auto election = elections_.find(vote.root);
  if (election != elections_.end()) {
    election->second.add_vote(vote.representative, weight, vote.block,
                              vote.sequence);
    // Early resolution on quorum (paper §IV-B: majority of votes).
    auto leader = election->second.leader();
    const double quorum = ledger_.params().vote_quorum *
                          static_cast<double>(ledger_.total_weight());
    if (leader && static_cast<double>(leader->second) >= quorum)
      finish_election(vote.root);
  }
}

void LatticeNode::tally_confirmation(const BlockHash& hash,
                                     const Vote& vote) {
  if (confirmed_.count(hash)) return;
  auto& by_rep = confirmation_votes_[hash];
  by_rep[vote.representative] = ledger_.weight_of(vote.representative);

  Amount total = 0;
  for (const auto& [rep, w] : by_rep) total += w;
  const double quorum = ledger_.params().vote_quorum *
                        static_cast<double>(ledger_.total_weight());
  if (static_cast<double>(total) < quorum) return;

  confirmed_.insert(hash);
  ++conf_stats_.blocks_confirmed;
  obs::inc(obs_confirmed_);
  config_.probe.trace(net_.simulation().now(), obs::EventType::kQuorumReached,
                      id_, static_cast<std::uint64_t>(total),
                      obs::trace_id(hash));
  auto seen = first_seen_.find(hash);
  if (seen != first_seen_.end())
    conf_stats_.time_to_confirm.add(net_.simulation().now() - seen->second);
  // Lifecycle: the first replica in the cluster to reach quorum for a
  // tracked block stamps its confirmation (the tracker ignores repeats).
  if (config_.lifecycle)
    config_.lifecycle->on_confirm(obs::trace_id(hash),
                                  net_.simulation().now(), id_);

  // Cement: the confirmed block becomes irreversible (paper §IV-B).
  if (ledger_.contains(hash)) {
    if (ledger_.cement(hash).ok()) ++conf_stats_.blocks_cemented;
  } else {
    // Confirmed block lost locally to a fork candidate: adopt it.
    auto cand = candidates_.find(hash);
    if (cand != candidates_.end()) {
      auto existing = ledger_.block_at_root(root_of(cand->second));
      if (existing) {
        auto removed = ledger_.rollback(existing->hash());
        if (removed)
          conf_stats_.elections_lost_rollbacks += removed->size();
      }
      if (ledger_.process(cand->second).ok()) {
        if (ledger_.cement(hash).ok()) ++conf_stats_.blocks_cemented;
        retry_gaps(hash);
      }
    }
  }
  confirmation_votes_.erase(hash);
}

void LatticeNode::start_or_join_election(const LatticeBlock& incoming) {
  const Root root = root_of(incoming);
  const bool known_candidate = candidates_.count(incoming.hash()) != 0;
  candidates_.emplace(incoming.hash(), incoming);

  auto existing = ledger_.block_at_root(root);
  if (existing) candidates_.emplace(existing->hash(), *existing);

  // A candidate we have already adjudicated must not reopen the election
  // (re-gossiped conflict blocks would otherwise ping-pong elections
  // between nodes forever).
  if (known_candidate && !elections_.count(root)) return;

  if (!elections_.count(root)) {
    elections_.emplace(root, Election(root, net_.simulation().now()));
    ++conf_stats_.elections_started;
    obs::inc(obs_elections_);
    // First-seen rule: a representative endorses the block it already
    // applied, not the newcomer.
    if (existing) vote_on(*existing);
    // Re-advertise both candidates: peers that saw only one side of the
    // conflict (e.g. across a healed partition) must learn of the other
    // before they can vote (Nano floods conflicting blocks similarly).
    net_.gossip(id_, net::make_message(kMsgBlock, incoming,
                                       incoming.serialized_size()));
    if (existing)
      net_.gossip(id_, net::make_message(kMsgBlock, *existing,
                                         existing->serialized_size()));
    schedule_revote(root);
    net_.simulation().schedule_in(ledger_.params().election_duration,
                                  [this, root] { finish_election(root); });
  }
}

void LatticeNode::schedule_revote(const Root& root) {
  // While an election is open, representatives periodically re-broadcast
  // their vote (Nano's vote rebroadcasting): late or reconnected peers
  // need the tally even if the original flood missed them.
  const double period =
      std::max(0.5, ledger_.params().election_duration / 2.0);
  net_.simulation().schedule_in(period, [this, root] {
    if (!elections_.count(root)) return;
    auto occupant = ledger_.block_at_root(root);
    if (occupant) vote_on(*occupant);
    schedule_revote(root);
  });
}

void LatticeNode::finish_election(const Root& root) {
  auto it = elections_.find(root);
  if (it == elections_.end()) return;
  auto leader = it->second.leader();
  elections_.erase(it);
  if (!leader) return;

  auto current = ledger_.block_at_root(root);
  if (current && current->hash() == leader->first) return;  // kept ours

  auto winner = candidates_.find(leader->first);
  if (winner == candidates_.end()) return;

  if (current) {
    auto removed = ledger_.rollback(current->hash());
    if (!removed) return;  // cemented; cannot switch
    conf_stats_.elections_lost_rollbacks += removed->size();
  }
  if (ledger_.process(winner->second).ok()) {
    after_applied(winner->second);
  }
}

void LatticeNode::maybe_auto_receive(const LatticeBlock& send_block) {
  if (!config_.online) return;  // Fig. 3: must be online to receive
  const crypto::AccountId destination(send_block.link);
  auto idx = account_index_.find(destination);
  if (idx == account_index_.end()) return;

  const crypto::KeyPair key = accounts_[idx->second];
  const BlockHash send_hash = send_block.hash();
  net_.simulation().schedule_in(config_.receive_delay,
                                [this, key, send_hash] {
    (void)receive_pending(key, send_hash);
  });
}

Result<BlockHash> LatticeNode::send(const crypto::KeyPair& from,
                                    const crypto::AccountId& to,
                                    Amount amount) {
  const crypto::AccountId account = from.account_id();
  const AccountInfo* info = ledger_.account(account);
  if (!info) return make_error("no-account", "sender chain does not exist");
  if (info->head().balance < amount)
    return make_error("insufficient-balance");

  LatticeBlock block;
  block.type = BlockType::kSend;
  block.account = account;
  block.previous = info->head().hash();
  block.balance = info->head().balance - amount;
  block.link = to;
  block.representative = info->head().representative;
  auto res = build_and_publish(std::move(block), from);
  if (res) {
    obs::inc(obs_sends_);
    config_.probe.trace(net_.simulation().now(), obs::EventType::kSendIssued,
                        id_, amount, obs::trace_id(to));
  }
  return res;
}

Result<BlockHash> LatticeNode::receive_pending(const crypto::KeyPair& key,
                                               const BlockHash& send_hash) {
  const crypto::AccountId account = key.account_id();

  if (config_.role == NodeRole::kLight) {
    // A light node cannot build a valid receive without ledger context in
    // this implementation; it publishes nothing (observes only).
    return make_error("light-node", "no ledger data to build a receive");
  }

  auto pend = ledger_.pending().find(send_hash);
  if (pend == ledger_.pending().end())
    return make_error("not-pending", "send unknown or already received");
  if (!(pend->second.destination == account))
    return make_error("wrong-destination");

  const AccountInfo* info = ledger_.account(account);
  LatticeBlock block;
  block.account = account;
  block.link = send_hash;
  if (!info) {
    block.type = BlockType::kOpen;
    block.balance = pend->second.amount;
    const crypto::KeyPair* rep = representative_key();
    block.representative = rep ? rep->account_id() : account;
  } else {
    block.type = BlockType::kReceive;
    block.previous = info->head().hash();
    block.balance = info->head().balance + pend->second.amount;
    block.representative = info->head().representative;
  }
  const Amount received = pend->second.amount;
  auto res = build_and_publish(std::move(block), key);
  if (res) {
    obs::inc(obs_receives_);
    config_.probe.trace(net_.simulation().now(),
                        obs::EventType::kReceiveSettled, id_, received,
                        obs::trace_id(send_hash));
  }
  return res;
}

Result<BlockHash> LatticeNode::change_representative(
    const crypto::KeyPair& key, const crypto::AccountId& new_rep) {
  const AccountInfo* info = ledger_.account(key.account_id());
  if (!info) return make_error("no-account");

  LatticeBlock block;
  block.type = BlockType::kChange;
  block.account = key.account_id();
  block.previous = info->head().hash();
  block.balance = info->head().balance;
  block.representative = new_rep;
  return build_and_publish(std::move(block), key);
}

Result<BlockHash> LatticeNode::build_and_publish(LatticeBlock block,
                                                 const crypto::KeyPair& key) {
  if (config_.solve_work) {
    obs::ProfileTimer timer(profile_work_);
    block.solve_work(ledger_.params().work_bits);
  }
  block.sign(key, rng_);

  const BlockHash hash = block.hash();
  first_seen_[hash] = net_.simulation().now();
  Status st = ledger_.process(block);
  if (!st.ok()) return st.error();
  after_applied(block);
  net_.gossip(id_, net::make_message(kMsgBlock, block,
                                     block.serialized_size()));
  return hash;
}

Status LatticeNode::publish(const LatticeBlock& block) {
  process_block(block);
  net_.gossip(id_, net::make_message(kMsgBlock, block,
                                     block.serialized_size()));
  return Status::success();
}

bool LatticeNode::is_confirmed(const BlockHash& hash) const {
  return confirmed_.count(hash) != 0;
}

std::size_t LatticeNode::gap_pool_size() const {
  std::size_t n = 0;
  for (const auto& [key, blocks] : gap_previous_) n += blocks.size();
  for (const auto& [key, blocks] : gap_source_) n += blocks.size();
  return n;
}

}  // namespace dlt::lattice
