// Representative voting (paper §III-B, §IV-B).
//
// "Representatives vote in order to resolve conflicts. Their votes are
// weighted: a representative's weight is calculated as the sum of all
// balances for accounts that chose this representative. In the case of a
// conflict, the winning transaction is the one that gained the most votes
// with regards to the voter's weight."
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "crypto/keys.hpp"
#include "lattice/block.hpp"
#include "support/result.hpp"

namespace dlt::lattice {

struct Vote {
  crypto::AccountId representative;
  Root root;            // the contested chain position
  BlockHash block;      // candidate this vote endorses
  std::uint64_t sequence = 0;  // later votes supersede earlier ones
  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  Hash256 sighash() const;
  void sign(const crypto::KeyPair& key, Rng& rng);
  /// A shared crypto::SignatureCache skips repeat verifications (votes are
  /// gossiped to every node, so all but the first check hit).
  bool verify(crypto::SignatureCache* sigcache = nullptr) const;

  static constexpr std::size_t kSerializedSize = 32 + 64 + 32 + 8 + 24;
};

/// Per-root tally. Tracks each representative's latest vote only, so a
/// representative switching sides moves its whole weight.
class Election {
 public:
  Election(Root root, double started_at)
      : root_(root), started_at_(started_at) {}

  const Root& root() const { return root_; }
  double started_at() const { return started_at_; }

  /// Records/updates a representative's weighted vote.
  void add_vote(const crypto::AccountId& representative, Amount weight,
                const BlockHash& candidate, std::uint64_t sequence);

  /// Candidate with the greatest weight (ties: lower hash, deterministic).
  std::optional<std::pair<BlockHash, Amount>> leader() const;

  Amount weight_for(const BlockHash& candidate) const;
  Amount total_voted_weight() const;
  std::size_t candidate_count() const;
  std::size_t voter_count() const { return votes_.size(); }

 private:
  struct RepVote {
    BlockHash candidate;
    Amount weight = 0;
    std::uint64_t sequence = 0;
  };

  Root root_;
  double started_at_;
  std::unordered_map<crypto::AccountId, RepVote> votes_;
};

}  // namespace dlt::lattice
