#include "lattice/ledger.hpp"

#include <cassert>
#include <unordered_set>

#include "core/partition.hpp"
#include "obs/profile.hpp"
#include "support/serialize.hpp"

namespace dlt::lattice {

namespace {
/// State-backend value for an account frontier: head hash + the balance it
/// carries (all the state §V-B head-only pruning keeps).
Bytes encode_frontier(const LatticeBlock& head) {
  Writer w;
  w.fixed(head.hash());
  w.u64(head.balance);
  return std::move(w).take();
}
}  // namespace

Ledger::Ledger(LatticeParams params, const crypto::AccountId& genesis_account,
               const crypto::AccountId& genesis_representative,
               Amount supply)
    : params_(std::move(params)), supply_(supply) {
  // "Similar to the genesis block in blockchain, a DAG holds a genesis
  // transaction. The genesis transaction defines the initial state." §II-B
  genesis_.type = BlockType::kOpen;
  genesis_.account = genesis_account;
  genesis_.balance = supply;
  genesis_.representative = genesis_representative;

  AccountInfo info;
  info.chain.push_back(genesis_);
  info.cemented_height = 1;  // the genesis transaction is irreversible
  accounts_.emplace(genesis_account, std::move(info));
  locations_.emplace(genesis_.hash(), BlockLocation{genesis_account, 0});
  weights_[genesis_representative] += supply;
  block_count_ = 1;
}

const AccountInfo* Ledger::account(const crypto::AccountId& id) const {
  auto it = accounts_.find(id);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::optional<LatticeBlock> Ledger::find_block(const BlockHash& hash) const {
  auto it = locations_.find(hash);
  if (it == locations_.end()) return std::nullopt;
  const AccountInfo* info = account(it->second.account);
  assert(info);
  const LatticeBlock* b = info->block_at(it->second.height);
  if (!b) return std::nullopt;
  return *b;
}

bool Ledger::contains(const BlockHash& hash) const {
  return locations_.count(hash) != 0;
}

Amount Ledger::balance_of(const crypto::AccountId& id) const {
  const AccountInfo* info = account(id);
  return info ? info->head().balance : 0;
}

std::optional<BlockHash> Ledger::head_of(const crypto::AccountId& id) const {
  const AccountInfo* info = account(id);
  if (!info) return std::nullopt;
  return info->head().hash();
}

std::optional<LatticeBlock> Ledger::block_at_root(const Root& root) const {
  const AccountInfo* info = account(root.account);
  if (!info) return std::nullopt;
  if (root.previous.is_zero()) {
    const LatticeBlock* first = info->block_at(0);
    if (!first) return std::nullopt;
    return *first;
  }
  auto loc = locations_.find(root.previous);
  if (loc == locations_.end() || !(loc->second.account == root.account))
    return std::nullopt;
  const LatticeBlock* succ = info->block_at(loc->second.height + 1);
  if (!succ) return std::nullopt;
  return *succ;
}

Ledger::StatelessVerdict Ledger::compute_verdict(
    const LatticeBlock& block) const {
  // Collect, on the simulation thread: memoize the content hash, derive
  // the signer (thread-local memo) and probe the sigcache in the same
  // order the serial path would.
  const BlockHash hash = block.hash();
  const bool owner_ok = crypto::account_of(block.pubkey) == block.account;
  const bool cached =
      owner_ok && sigcache_ &&
      sigcache_->contains(block.pubkey, hash, block.signature);

  enum : std::size_t { kSig = 0, kWork = 1 };
  std::size_t kinds[2];
  std::size_t n = 0;
  if (owner_ok && !cached) kinds[n++] = kSig;
  if (params_.verify_work) kinds[n++] = kWork;
  pv_.record_batch(n, verify_pool_->thread_count());

  // Shard: only pure functions, each job writing its own slot.
  std::uint8_t ok[2] = {0, 0};
  if (n > 0) {
    obs::ProfileTimer timer(pv_.join_us);
    verify_pool_->parallel_for(n, [&](std::size_t k) {
      if (kinds[k] == kSig)
        ok[kSig] =
            crypto::verify(block.pubkey, hash.view(), block.signature) ? 1 : 0;
      else
        ok[kWork] = block.verify_work(params_.work_bits) ? 1 : 0;
    });
  }

  StatelessVerdict v;
  v.sig_ok = owner_ok && (cached || ok[kSig] != 0);
  v.work_ok = !params_.verify_work || ok[kWork] != 0;
  // Join: a fresh success enters the cache exactly where verify_cached
  // would have inserted it on the serial path.
  if (owner_ok && !cached && ok[kSig] != 0 && sigcache_)
    sigcache_->insert(block.pubkey, hash, block.signature);
  return v;
}

const LatticeBlock* Ledger::DirectView::head_of(
    const crypto::AccountId& id) const {
  const AccountInfo* info = l->account(id);
  return info ? &info->head() : nullptr;
}

std::optional<crypto::AccountId> Ledger::DirectView::location_account(
    const BlockHash& hash) const {
  auto it = l->locations_.find(hash);
  if (it == l->locations_.end()) return std::nullopt;
  return it->second.account;
}

const PendingInfo* Ledger::DirectView::pending(const BlockHash& link) const {
  auto it = l->pending_.find(link);
  return it == l->pending_.end() ? nullptr : &it->second;
}

bool Ledger::DirectView::claimed(const BlockHash& link) const {
  return l->claimed_.count(link) != 0;
}

Status Ledger::validate(const LatticeBlock& block,
                        const StatelessVerdict* verdict) const {
  return validate_with(DirectView{this}, block, verdict);
}

void Ledger::apply_weight_change(const crypto::AccountId& old_rep,
                                 Amount old_bal,
                                 const crypto::AccountId& new_rep,
                                 Amount new_bal) {
  if (!old_rep.is_zero()) {
    auto it = weights_.find(old_rep);
    assert(it != weights_.end() && it->second >= old_bal);
    it->second -= old_bal;
    if (it->second == 0) weights_.erase(it);
  }
  if (!new_rep.is_zero()) weights_[new_rep] += new_bal;
}

Status Ledger::process(const LatticeBlock& block) {
  const BlockHash hash = block.hash();
  if (locations_.count(hash)) return make_error("duplicate");

  if (parallel_validation()) {
    const StatelessVerdict verdict = compute_verdict(block);
    return process_one(block, hash, &verdict);
  }
  return process_one(block, hash, nullptr);
}

Status Ledger::process_one(const LatticeBlock& block, const BlockHash& hash,
                           const StatelessVerdict* verdict) {
  if (locations_.count(hash)) return make_error("duplicate");
  Status st = validate(block, verdict);
  if (!st.ok()) return st;
  apply_validated(block, hash);
  return Status::success();
}

void Ledger::apply_validated(const LatticeBlock& block, const BlockHash& hash) {
  if (block.type == BlockType::kOpen) {
    auto pend = pending_.find(block.link);
    claimed_.emplace(block.link, std::make_pair(hash, pend->second));
    pending_.erase(pend);

    AccountInfo info;
    info.chain.push_back(block);
    accounts_.emplace(block.account, std::move(info));
    locations_.emplace(hash, BlockLocation{block.account, 0});
    apply_weight_change({}, 0, block.representative, block.balance);
  } else {
    AccountInfo& info = accounts_.at(block.account);
    const LatticeBlock& head = info.head();

    if (block.type == BlockType::kSend) {
      const Amount amount = head.balance - block.balance;
      crypto::AccountId destination = block.link;
      pending_.emplace(hash, PendingInfo{block.account, destination, amount});
    } else if (block.type == BlockType::kReceive) {
      auto pend = pending_.find(block.link);
      claimed_.emplace(block.link, std::make_pair(hash, pend->second));
      pending_.erase(pend);
    }

    apply_weight_change(head.representative, head.balance,
                        block.representative, block.balance);
    locations_.emplace(hash, BlockLocation{block.account, info.height()});
    info.chain.push_back(block);
  }
  ++block_count_;
  persist_apply(block, hash);
}

void Ledger::persist_apply(const LatticeBlock& block, const BlockHash& hash) {
  if (!store_) return;
  store_->log().append(storage::RecordType::kBlock, hash, block.serialize());
  store_->state().put(block.account, encode_frontier(block));
  store_->commit();
}

void Ledger::persist_rollback(const LatticeBlock& block,
                              const BlockHash& hash) {
  if (!store_) return;
  store_->log().erase(storage::RecordType::kBlock, hash);
  const AccountInfo* info = account(block.account);
  if (info)
    store_->state().put(block.account, encode_frontier(info->head()));
  else
    store_->state().erase(block.account);
  store_->commit();
}

void Ledger::attach_store(std::shared_ptr<storage::LedgerStore> store) {
  store_ = std::move(store);
  if (!store_) return;
  const BlockHash gh = genesis_.hash();
  if (!store_->log().contains(storage::RecordType::kBlock, gh)) {
    store_->log().append(storage::RecordType::kBlock, gh,
                         genesis_.serialize());
    store_->state().put(genesis_.account, encode_frontier(genesis_));
  }
  store_->commit();
}

std::size_t Ledger::replay_from_store() {
  if (!store_) return 0;
  std::vector<Bytes> records;
  store_->log().for_each(
      [&](storage::RecordType type, const Hash256& key, ByteView payload) {
        (void)key;
        if (type == storage::RecordType::kBlock)
          records.emplace_back(payload.begin(), payload.end());
      });
  std::size_t accepted = 0;
  for (const Bytes& raw : records) {
    auto block = LatticeBlock::deserialize(raw);
    if (!block) continue;
    if (locations_.count(block->hash())) continue;  // genesis / replayed
    if (process(*block).ok()) ++accepted;
  }
  return accepted;
}

std::vector<Status> Ledger::process_batch(
    const std::vector<LatticeBlock>& blocks) {
  const std::size_t n = blocks.size();
  std::vector<Status> out(n);
  if (!parallel_state() || n < 2) {
    for (std::size_t i = 0; i < n; ++i) out[i] = process(blocks[i]);
    return out;
  }

  // Collect on the calling thread: hashes, frozen-duplicate flags and the
  // stateless verdicts, in batch order. Verdicts are skipped for blocks the
  // frozen ledger already holds, exactly as the serial loop's duplicate
  // check would skip them; sigcache probes never mutate the cache and keys
  // are per-block unique, so computing the rest upfront inserts into the
  // cache in the same order the serial loop interleaves them.
  std::vector<BlockHash> hashes(n);
  std::vector<std::uint8_t> dup_frozen(n, 0);
  std::vector<StatelessVerdict> verdicts(n);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = blocks[i].hash();
    dup_frozen[i] = locations_.count(hashes[i]) ? 1 : 0;
    if (!dup_frozen[i]) verdicts[i] = compute_verdict(blocks[i]);
  }

  // Key extraction: a block touches its account chain (head + new
  // location), its own hash (duplicate detection), its predecessor's
  // location and the send it links to. In-batch dependency chains (a send
  // followed by its receive, a head followed by its successor) share a key
  // and land in one group.
  core::ConflictPartitioner part(n);
  for (std::size_t i = 0; i < n; ++i) {
    part.add_key(i, blocks[i].account);
    part.add_key(i, hashes[i]);
    if (!blocks[i].previous.is_zero()) part.add_key(i, blocks[i].previous);
    if (!blocks[i].link.is_zero()) part.add_key(i, blocks[i].link);
  }
  const auto groups = part.groups();
  ps_.record_batch(groups.size(), verify_pool_->thread_count());
  if (groups.size() < 2) {
    // One spanning group: nothing to parallelize; serial reference path.
    ps_.record_demotion();
    for (std::size_t i = 0; i < n; ++i)
      out[i] = process_one(blocks[i], hashes[i],
                           dup_frozen[i] ? nullptr : &verdicts[i]);
    return out;
  }

  // Group checks: side-effect-free validation against the frozen ledger
  // plus a group-local overlay mirroring apply_validated's effects. Every
  // state entry a block reads or writes is covered by its keys (group
  // closure), so concurrent groups never observe each other; workers take
  // verdict slots for all crypto and write only their own status slots.
  {
    obs::ProfileTimer timer(ps_.join_us);
    verify_pool_->parallel_for(groups.size(), [&](std::size_t g) {
      struct Overlay {
        const Ledger* l;
        std::unordered_map<crypto::AccountId, const LatticeBlock*> heads;
        std::unordered_map<BlockHash, crypto::AccountId> locs;
        std::unordered_map<BlockHash, PendingInfo> pend_added;
        std::unordered_set<BlockHash> pend_removed;
        std::unordered_set<BlockHash> claim_added;

        const LatticeBlock* head_of(const crypto::AccountId& id) const {
          auto it = heads.find(id);
          if (it != heads.end()) return it->second;
          const AccountInfo* info = l->account(id);
          return info ? &info->head() : nullptr;
        }
        std::optional<crypto::AccountId> location_account(
            const BlockHash& hash) const {
          auto it = locs.find(hash);
          if (it != locs.end()) return it->second;
          auto fit = l->locations_.find(hash);
          if (fit == l->locations_.end()) return std::nullopt;
          return fit->second.account;
        }
        const PendingInfo* pending(const BlockHash& link) const {
          if (pend_removed.count(link)) return nullptr;
          auto it = pend_added.find(link);
          if (it != pend_added.end()) return &it->second;
          auto fit = l->pending_.find(link);
          return fit == l->pending_.end() ? nullptr : &fit->second;
        }
        bool claimed(const BlockHash& link) const {
          return claim_added.count(link) != 0 ||
                 l->claimed_.count(link) != 0;
        }
        bool contains(const BlockHash& hash) const {
          return locs.count(hash) != 0 || l->locations_.count(hash) != 0;
        }

        void apply(const LatticeBlock& b, const BlockHash& h) {
          if (b.type == BlockType::kOpen) {
            claim_added.insert(b.link);
            if (!pend_added.erase(b.link)) pend_removed.insert(b.link);
          } else if (b.type == BlockType::kSend) {
            const LatticeBlock* head = head_of(b.account);
            pend_added.emplace(
                h, PendingInfo{b.account, b.link, head->balance - b.balance});
          } else if (b.type == BlockType::kReceive) {
            claim_added.insert(b.link);
            if (!pend_added.erase(b.link)) pend_removed.insert(b.link);
          }
          heads[b.account] = &b;
          locs[h] = b.account;
        }
      };

      Overlay ov{this, {}, {}, {}, {}, {}};
      for (const std::size_t i : groups[g]) {
        if (ov.contains(hashes[i])) {
          out[i] = make_error("duplicate");
          continue;
        }
        out[i] = validate_with(ov, blocks[i], &verdicts[i]);
        if (out[i].ok()) ov.apply(blocks[i], hashes[i]);
      }
    });
  }

  // Commit: replay the exact serial mutation sequence, in batch order, for
  // every block whose group check passed. Failed blocks are skipped with
  // their group-check status — identical to the serial loop, where a
  // failed process() leaves the ledger untouched.
  std::size_t applied = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!out[i].ok()) continue;
    apply_validated(blocks[i], hashes[i]);
    ++applied;
  }
  ps_.record_applied(applied);
  return out;
}

std::vector<std::pair<BlockHash, PendingInfo>> Ledger::pending_for(
    const crypto::AccountId& destination) const {
  std::vector<std::pair<BlockHash, PendingInfo>> out;
  for (const auto& [hash, info] : pending_)
    if (info.destination == destination) out.emplace_back(hash, info);
  return out;
}

Amount Ledger::total_pending() const {
  Amount sum = 0;
  for (const auto& [hash, info] : pending_) sum += info.amount;
  return sum;
}

void Ledger::for_each_head(
    const std::function<void(const crypto::AccountId&, const BlockHash&)>&
        fn) const {
  for (const auto& [id, info] : accounts_) fn(id, info.head().hash());
}

Amount Ledger::weight_of(const crypto::AccountId& representative) const {
  auto it = weights_.find(representative);
  return it == weights_.end() ? 0 : it->second;
}

Amount Ledger::total_weight() const {
  return supply_ - total_pending();
}

Status Ledger::rollback_one(const BlockHash& hash,
                            std::vector<LatticeBlock>& removed) {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return Status::success();  // already gone
  const crypto::AccountId account_id = loc->second.account;
  const std::uint32_t target_height = loc->second.height;

  {
    const AccountInfo& info = accounts_.at(account_id);
    if (target_height < info.cemented_height)
      return make_error("cemented", "cannot roll back a cemented block");
    if (target_height < info.pruned_below)
      return make_error("pruned", "cannot roll back pruned history");
  }

  while (true) {
    AccountInfo& info = accounts_.at(account_id);
    if (info.height() <= target_height) break;
    const LatticeBlock top = info.head();
    const BlockHash top_hash = top.hash();

    if (top.type == BlockType::kSend) {
      // A send's funds may already be claimed elsewhere; that claim (and
      // everything above it) must unwind first -- cascading rollback.
      auto claim = claimed_.find(top_hash);
      if (claim != claimed_.end()) {
        Status st = rollback_one(claim->second.first, removed);
        if (!st.ok()) return st;
      }
      auto pend = pending_.find(top_hash);
      assert(pend != pending_.end());
      pending_.erase(pend);
    } else if (top.type == BlockType::kReceive ||
               top.type == BlockType::kOpen) {
      // Re-expose the source send as pending.
      auto claim = claimed_.find(top.link);
      assert(claim != claimed_.end());
      pending_.emplace(top.link, claim->second.second);
      claimed_.erase(claim);
    }

    // Reverse the weight delta this block applied.
    if (top.type == BlockType::kOpen) {
      apply_weight_change(top.representative, top.balance, {}, 0);
    } else {
      const LatticeBlock* below = info.block_at(info.height() - 2);
      assert(below && "rollback into pruned history");
      apply_weight_change(top.representative, top.balance,
                          below->representative, below->balance);
    }

    locations_.erase(top_hash);
    info.chain.pop_back();
    --block_count_;
    removed.push_back(top);

    const bool account_gone = info.chain.empty();
    if (account_gone) accounts_.erase(account_id);
    persist_rollback(top, top_hash);
    if (account_gone) break;
  }
  return Status::success();
}

Result<std::vector<LatticeBlock>> Ledger::rollback(const BlockHash& hash) {
  if (!locations_.count(hash)) return make_error("unknown-block");
  std::vector<LatticeBlock> removed;
  Status st = rollback_one(hash, removed);
  if (!st.ok()) return st.error();
  return removed;
}

Status Ledger::cement(const BlockHash& hash) {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return make_error("unknown-block");
  AccountInfo& info = accounts_.at(loc->second.account);
  info.cemented_height =
      std::max(info.cemented_height, loc->second.height + 1);
  return Status::success();
}

bool Ledger::is_cemented(const BlockHash& hash) const {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return false;
  const AccountInfo* info = account(loc->second.account);
  return info && loc->second.height < info->cemented_height;
}

std::uint64_t Ledger::prune_history() {
  std::uint64_t reclaimed = 0;
  bool erased = false;
  for (auto& [id, info] : accounts_) {
    // Only cemented history may go; always keep the head block, whose
    // balance field carries the whole account state (§V-B).
    const std::uint32_t keep_from =
        std::min(info.cemented_height > 0 ? info.cemented_height - 1 : 0,
                 info.height() - 1);
    if (keep_from <= info.pruned_below) continue;
    const std::uint32_t drop = keep_from - info.pruned_below;
    for (std::uint32_t i = 0; i < drop; ++i) {
      locations_.erase(info.chain[i].hash());
      reclaimed += info.chain[i].serialized_size();
      if (store_)
        erased |= store_->log().erase(storage::RecordType::kBlock,
                                      info.chain[i].hash());
    }
    info.chain.erase(info.chain.begin(), info.chain.begin() + drop);
    info.pruned_below = keep_from;
    block_count_ -= drop;
    pruned_blocks_ += drop;
  }
  if (store_ && erased) {
    store_->note_pruned(store_->log().compact());
    store_->commit();
  }
  return reclaimed;
}

Ledger::StorageBreakdown Ledger::storage() const {
  StorageBreakdown s;
  s.blocks = block_count_ * LatticeBlock::kSerializedSize;
  s.pending_table = pending_.size() * (32 + 32 + 32 + 8);
  s.weight_table = weights_.size() * (32 + 8);
  return s;
}

bool Ledger::conserves_value() const {
  Amount balances = 0;
  for (const auto& [id, info] : accounts_) balances += info.head().balance;
  return balances + total_pending() == supply_;
}

}  // namespace dlt::lattice
