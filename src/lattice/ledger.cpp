#include "lattice/ledger.hpp"

#include <cassert>

#include "obs/profile.hpp"

namespace dlt::lattice {

Ledger::Ledger(LatticeParams params, const crypto::AccountId& genesis_account,
               const crypto::AccountId& genesis_representative,
               Amount supply)
    : params_(std::move(params)), supply_(supply) {
  // "Similar to the genesis block in blockchain, a DAG holds a genesis
  // transaction. The genesis transaction defines the initial state." §II-B
  genesis_.type = BlockType::kOpen;
  genesis_.account = genesis_account;
  genesis_.balance = supply;
  genesis_.representative = genesis_representative;

  AccountInfo info;
  info.chain.push_back(genesis_);
  info.cemented_height = 1;  // the genesis transaction is irreversible
  accounts_.emplace(genesis_account, std::move(info));
  locations_.emplace(genesis_.hash(), BlockLocation{genesis_account, 0});
  weights_[genesis_representative] += supply;
  block_count_ = 1;
}

const AccountInfo* Ledger::account(const crypto::AccountId& id) const {
  auto it = accounts_.find(id);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::optional<LatticeBlock> Ledger::find_block(const BlockHash& hash) const {
  auto it = locations_.find(hash);
  if (it == locations_.end()) return std::nullopt;
  const AccountInfo* info = account(it->second.account);
  assert(info);
  const LatticeBlock* b = info->block_at(it->second.height);
  if (!b) return std::nullopt;
  return *b;
}

bool Ledger::contains(const BlockHash& hash) const {
  return locations_.count(hash) != 0;
}

Amount Ledger::balance_of(const crypto::AccountId& id) const {
  const AccountInfo* info = account(id);
  return info ? info->head().balance : 0;
}

std::optional<BlockHash> Ledger::head_of(const crypto::AccountId& id) const {
  const AccountInfo* info = account(id);
  if (!info) return std::nullopt;
  return info->head().hash();
}

std::optional<LatticeBlock> Ledger::block_at_root(const Root& root) const {
  const AccountInfo* info = account(root.account);
  if (!info) return std::nullopt;
  if (root.previous.is_zero()) {
    const LatticeBlock* first = info->block_at(0);
    if (!first) return std::nullopt;
    return *first;
  }
  auto loc = locations_.find(root.previous);
  if (loc == locations_.end() || !(loc->second.account == root.account))
    return std::nullopt;
  const LatticeBlock* succ = info->block_at(loc->second.height + 1);
  if (!succ) return std::nullopt;
  return *succ;
}

Ledger::StatelessVerdict Ledger::compute_verdict(
    const LatticeBlock& block) const {
  // Collect, on the simulation thread: memoize the content hash, derive
  // the signer (thread-local memo) and probe the sigcache in the same
  // order the serial path would.
  const BlockHash hash = block.hash();
  const bool owner_ok = crypto::account_of(block.pubkey) == block.account;
  const bool cached =
      owner_ok && sigcache_ &&
      sigcache_->contains(block.pubkey, hash, block.signature);

  enum : std::size_t { kSig = 0, kWork = 1 };
  std::size_t kinds[2];
  std::size_t n = 0;
  if (owner_ok && !cached) kinds[n++] = kSig;
  if (params_.verify_work) kinds[n++] = kWork;
  pv_.record_batch(n, verify_pool_->thread_count());

  // Shard: only pure functions, each job writing its own slot.
  std::uint8_t ok[2] = {0, 0};
  if (n > 0) {
    obs::ProfileTimer timer(pv_.join_us);
    verify_pool_->parallel_for(n, [&](std::size_t k) {
      if (kinds[k] == kSig)
        ok[kSig] =
            crypto::verify(block.pubkey, hash.view(), block.signature) ? 1 : 0;
      else
        ok[kWork] = block.verify_work(params_.work_bits) ? 1 : 0;
    });
  }

  StatelessVerdict v;
  v.sig_ok = owner_ok && (cached || ok[kSig] != 0);
  v.work_ok = !params_.verify_work || ok[kWork] != 0;
  // Join: a fresh success enters the cache exactly where verify_cached
  // would have inserted it on the serial path.
  if (owner_ok && !cached && ok[kSig] != 0 && sigcache_)
    sigcache_->insert(block.pubkey, hash, block.signature);
  return v;
}

Status Ledger::validate(const LatticeBlock& block,
                        const StatelessVerdict* verdict) const {
  const bool sig_ok =
      verdict ? verdict->sig_ok : block.verify_signature(sigcache_.get());
  if (!sig_ok) return make_error("bad-signature");
  if (params_.verify_work) {
    const bool work_ok =
        verdict ? verdict->work_ok : block.verify_work(params_.work_bits);
    if (!work_ok)
      return make_error("insufficient-work",
                        "anti-spam hashcash below threshold");
  }

  const AccountInfo* info = account(block.account);

  if (block.type == BlockType::kOpen) {
    if (!block.previous.is_zero())
      return make_error("malformed", "open block with a predecessor");
    if (info) return make_error("fork", "account already opened");
    auto pend = pending_.find(block.link);
    if (pend == pending_.end()) {
      // Distinguish a never-seen source from an already-claimed one.
      if (claimed_.count(block.link))
        return make_error("already-claimed");
      return make_error("gap-source", "unknown source send");
    }
    if (!(pend->second.destination == block.account))
      return make_error("wrong-destination");
    if (block.balance != pend->second.amount)
      return make_error("bad-balance", "open must equal the pending amount");
    return Status::success();
  }

  if (!info)
    return make_error("gap-previous", "account chain does not exist");
  const LatticeBlock& head = info->head();
  if (block.previous != head.hash()) {
    auto loc = locations_.find(block.previous);
    if (loc != locations_.end() && loc->second.account == block.account)
      return make_error("fork", "a successor already occupies this root");
    return make_error("gap-previous", "predecessor not found");
  }

  switch (block.type) {
    case BlockType::kSend: {
      if (block.link.is_zero())
        return make_error("malformed", "send without destination");
      if (block.balance >= head.balance)
        return make_error("bad-balance", "send must decrease the balance");
      return Status::success();
    }
    case BlockType::kReceive: {
      auto pend = pending_.find(block.link);
      if (pend == pending_.end()) {
        if (claimed_.count(block.link)) return make_error("already-claimed");
        return make_error("gap-source", "unknown source send");
      }
      if (!(pend->second.destination == block.account))
        return make_error("wrong-destination");
      if (block.balance != head.balance + pend->second.amount)
        return make_error("bad-balance",
                          "receive must add exactly the pending amount");
      return Status::success();
    }
    case BlockType::kChange: {
      if (block.balance != head.balance)
        return make_error("bad-balance", "change must keep the balance");
      return Status::success();
    }
    case BlockType::kOpen:
      break;  // handled above
  }
  return make_error("malformed", "unknown block type");
}

void Ledger::apply_weight_change(const crypto::AccountId& old_rep,
                                 Amount old_bal,
                                 const crypto::AccountId& new_rep,
                                 Amount new_bal) {
  if (!old_rep.is_zero()) {
    auto it = weights_.find(old_rep);
    assert(it != weights_.end() && it->second >= old_bal);
    it->second -= old_bal;
    if (it->second == 0) weights_.erase(it);
  }
  if (!new_rep.is_zero()) weights_[new_rep] += new_bal;
}

Status Ledger::process(const LatticeBlock& block) {
  const BlockHash hash = block.hash();
  if (locations_.count(hash)) return make_error("duplicate");

  Status st;
  if (parallel_validation()) {
    const StatelessVerdict verdict = compute_verdict(block);
    st = validate(block, &verdict);
  } else {
    st = validate(block);
  }
  if (!st.ok()) return st;

  if (block.type == BlockType::kOpen) {
    auto pend = pending_.find(block.link);
    claimed_.emplace(block.link, std::make_pair(hash, pend->second));
    pending_.erase(pend);

    AccountInfo info;
    info.chain.push_back(block);
    accounts_.emplace(block.account, std::move(info));
    locations_.emplace(hash, BlockLocation{block.account, 0});
    apply_weight_change({}, 0, block.representative, block.balance);
  } else {
    AccountInfo& info = accounts_.at(block.account);
    const LatticeBlock& head = info.head();

    if (block.type == BlockType::kSend) {
      const Amount amount = head.balance - block.balance;
      crypto::AccountId destination = block.link;
      pending_.emplace(hash, PendingInfo{block.account, destination, amount});
    } else if (block.type == BlockType::kReceive) {
      auto pend = pending_.find(block.link);
      claimed_.emplace(block.link, std::make_pair(hash, pend->second));
      pending_.erase(pend);
    }

    apply_weight_change(head.representative, head.balance,
                        block.representative, block.balance);
    locations_.emplace(hash, BlockLocation{block.account, info.height()});
    info.chain.push_back(block);
  }
  ++block_count_;
  return Status::success();
}

std::vector<std::pair<BlockHash, PendingInfo>> Ledger::pending_for(
    const crypto::AccountId& destination) const {
  std::vector<std::pair<BlockHash, PendingInfo>> out;
  for (const auto& [hash, info] : pending_)
    if (info.destination == destination) out.emplace_back(hash, info);
  return out;
}

Amount Ledger::total_pending() const {
  Amount sum = 0;
  for (const auto& [hash, info] : pending_) sum += info.amount;
  return sum;
}

void Ledger::for_each_head(
    const std::function<void(const crypto::AccountId&, const BlockHash&)>&
        fn) const {
  for (const auto& [id, info] : accounts_) fn(id, info.head().hash());
}

Amount Ledger::weight_of(const crypto::AccountId& representative) const {
  auto it = weights_.find(representative);
  return it == weights_.end() ? 0 : it->second;
}

Amount Ledger::total_weight() const {
  return supply_ - total_pending();
}

Status Ledger::rollback_one(const BlockHash& hash,
                            std::vector<LatticeBlock>& removed) {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return Status::success();  // already gone
  const crypto::AccountId account_id = loc->second.account;
  const std::uint32_t target_height = loc->second.height;

  {
    const AccountInfo& info = accounts_.at(account_id);
    if (target_height < info.cemented_height)
      return make_error("cemented", "cannot roll back a cemented block");
    if (target_height < info.pruned_below)
      return make_error("pruned", "cannot roll back pruned history");
  }

  while (true) {
    AccountInfo& info = accounts_.at(account_id);
    if (info.height() <= target_height) break;
    const LatticeBlock top = info.head();
    const BlockHash top_hash = top.hash();

    if (top.type == BlockType::kSend) {
      // A send's funds may already be claimed elsewhere; that claim (and
      // everything above it) must unwind first -- cascading rollback.
      auto claim = claimed_.find(top_hash);
      if (claim != claimed_.end()) {
        Status st = rollback_one(claim->second.first, removed);
        if (!st.ok()) return st;
      }
      auto pend = pending_.find(top_hash);
      assert(pend != pending_.end());
      pending_.erase(pend);
    } else if (top.type == BlockType::kReceive ||
               top.type == BlockType::kOpen) {
      // Re-expose the source send as pending.
      auto claim = claimed_.find(top.link);
      assert(claim != claimed_.end());
      pending_.emplace(top.link, claim->second.second);
      claimed_.erase(claim);
    }

    // Reverse the weight delta this block applied.
    if (top.type == BlockType::kOpen) {
      apply_weight_change(top.representative, top.balance, {}, 0);
    } else {
      const LatticeBlock* below = info.block_at(info.height() - 2);
      assert(below && "rollback into pruned history");
      apply_weight_change(top.representative, top.balance,
                          below->representative, below->balance);
    }

    locations_.erase(top_hash);
    info.chain.pop_back();
    --block_count_;
    removed.push_back(top);

    if (info.chain.empty()) {
      accounts_.erase(account_id);
      break;
    }
  }
  return Status::success();
}

Result<std::vector<LatticeBlock>> Ledger::rollback(const BlockHash& hash) {
  if (!locations_.count(hash)) return make_error("unknown-block");
  std::vector<LatticeBlock> removed;
  Status st = rollback_one(hash, removed);
  if (!st.ok()) return st.error();
  return removed;
}

Status Ledger::cement(const BlockHash& hash) {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return make_error("unknown-block");
  AccountInfo& info = accounts_.at(loc->second.account);
  info.cemented_height =
      std::max(info.cemented_height, loc->second.height + 1);
  return Status::success();
}

bool Ledger::is_cemented(const BlockHash& hash) const {
  auto loc = locations_.find(hash);
  if (loc == locations_.end()) return false;
  const AccountInfo* info = account(loc->second.account);
  return info && loc->second.height < info->cemented_height;
}

std::uint64_t Ledger::prune_history() {
  std::uint64_t reclaimed = 0;
  for (auto& [id, info] : accounts_) {
    // Only cemented history may go; always keep the head block, whose
    // balance field carries the whole account state (§V-B).
    const std::uint32_t keep_from =
        std::min(info.cemented_height > 0 ? info.cemented_height - 1 : 0,
                 info.height() - 1);
    if (keep_from <= info.pruned_below) continue;
    const std::uint32_t drop = keep_from - info.pruned_below;
    for (std::uint32_t i = 0; i < drop; ++i) {
      locations_.erase(info.chain[i].hash());
      reclaimed += info.chain[i].serialized_size();
    }
    info.chain.erase(info.chain.begin(), info.chain.begin() + drop);
    info.pruned_below = keep_from;
    block_count_ -= drop;
    pruned_blocks_ += drop;
  }
  return reclaimed;
}

Ledger::StorageBreakdown Ledger::storage() const {
  StorageBreakdown s;
  s.blocks = block_count_ * LatticeBlock::kSerializedSize;
  s.pending_table = pending_.size() * (32 + 32 + 32 + 8);
  s.weight_table = weights_.size() * (32 + 8);
  return s;
}

bool Ledger::conserves_value() const {
  Amount balances = 0;
  for (const auto& [id, info] : accounts_) balances += info.head().balance;
  return balances + total_pending() == supply_;
}

}  // namespace dlt::lattice
