#include "lattice/block.hpp"

#include "crypto/hash.hpp"
#include "support/hex.hpp"
#include "support/serialize.hpp"

namespace dlt::lattice {

const char* to_string(BlockType t) {
  switch (t) {
    case BlockType::kOpen: return "open";
    case BlockType::kSend: return "send";
    case BlockType::kReceive: return "receive";
    case BlockType::kChange: return "change";
  }
  return "?";
}

namespace {
void write_core(Writer& w, const LatticeBlock& b) {
  w.u8(static_cast<std::uint8_t>(b.type));
  w.fixed(b.account);
  w.fixed(b.previous);
  w.u64(b.balance);
  w.fixed(b.link);
  w.fixed(b.representative);
}
}  // namespace

BlockHash LatticeBlock::hash() const {
  return hash_memo_.get([this] {
    Writer w;
    write_core(w, *this);
    return crypto::tagged_hash("dlt/lattice-block",
                               ByteView{w.bytes().data(), w.size()});
  });
}

Bytes LatticeBlock::work_payload() const {
  // Work covers the chain position (account for open, previous otherwise),
  // exactly as Nano precomputes work against the current head.
  Writer w;
  if (previous.is_zero())
    w.fixed(account);
  else
    w.fixed(previous);
  return std::move(w).take();
}

Bytes LatticeBlock::serialize() const {
  Writer w;
  write_core(w, *this);
  w.u64(work);
  w.u64(pubkey);
  w.u64(signature.r);
  w.u64(signature.s);
  return std::move(w).take();
}

Result<LatticeBlock> LatticeBlock::deserialize(ByteView raw) {
  Reader r(raw);
  LatticeBlock b;
  auto type = r.u8();
  if (!type) return type.error();
  if (*type > static_cast<std::uint8_t>(BlockType::kChange))
    return make_error("lattice-record-bad-type");
  b.type = static_cast<BlockType>(*type);
  auto account = r.fixed<32>();
  if (!account) return account.error();
  b.account = *account;
  auto previous = r.fixed<32>();
  if (!previous) return previous.error();
  b.previous = *previous;
  auto balance = r.u64();
  if (!balance) return balance.error();
  b.balance = *balance;
  auto link = r.fixed<32>();
  if (!link) return link.error();
  b.link = *link;
  auto rep = r.fixed<32>();
  if (!rep) return rep.error();
  b.representative = *rep;
  auto work = r.u64();
  if (!work) return work.error();
  b.work = *work;
  auto pubkey = r.u64();
  if (!pubkey) return pubkey.error();
  b.pubkey = *pubkey;
  auto sr = r.u64();
  if (!sr) return sr.error();
  b.signature.r = *sr;
  auto ss = r.u64();
  if (!ss) return ss.error();
  b.signature.s = *ss;
  if (!r.done()) return make_error("lattice-record-trailing-bytes");
  return b;
}

void LatticeBlock::sign(const crypto::KeyPair& key, Rng& rng) {
  pubkey = key.public_key();
  signature = key.sign(hash().view(), rng);
}

bool LatticeBlock::verify_signature(crypto::SignatureCache* sigcache) const {
  if (crypto::account_of(pubkey) != account) return false;
  return crypto::verify_cached(sigcache, pubkey, hash(), signature);
}

void LatticeBlock::solve_work(int difficulty_bits) {
  const Bytes payload = work_payload();
  auto solution =
      crypto::solve(ByteView{payload.data(), payload.size()}, difficulty_bits);
  work = solution->nonce;
}

bool LatticeBlock::verify_work(int difficulty_bits) const {
  const Bytes payload = work_payload();
  return crypto::verify(ByteView{payload.data(), payload.size()}, work,
                        difficulty_bits);
}

std::string LatticeBlock::to_short_string() const {
  std::string out = to_string(type);
  out += " ";
  out += short_hex(hash());
  out += " acct=";
  out += short_hex(account);
  out += " bal=" + std::to_string(balance);
  return out;
}

}  // namespace dlt::lattice
