// A Nano-style network participant (paper §II-B, §III-B, §IV-B, §V-B).
//
// Users order their own transactions ("a user in Nano must sort his/her
// own transactions", §VI-B); representatives vote automatically on new
// blocks and resolve forks by weighted election; receives are generated
// when the owner is online (Fig. 3); confirmed blocks are cemented.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lattice/ledger.hpp"
#include "lattice/voting.hpp"
#include "net/network.hpp"
#include "obs/probe.hpp"
#include "support/stats.hpp"

namespace dlt::obs {
class LatencyTracker;
}

namespace dlt::lattice {

/// Paper §V-B node taxonomy: historical nodes keep everything, current
/// nodes prune to chain heads, light nodes hold no ledger at all.
enum class NodeRole { kHistorical, kCurrent, kLight };

struct LatticeNodeConfig {
  NodeRole role = NodeRole::kHistorical;
  /// Solve the anti-spam hashcash for real when creating blocks.
  bool solve_work = true;
  /// Offline nodes do not auto-generate receives (Fig. 3: "a node has to
  /// be online in order to receive a transaction").
  bool online = true;
  /// Delay between observing an incoming pending send and publishing the
  /// matching receive block.
  double receive_delay = 0.2;
  /// kCurrent nodes prune this often (simulated seconds; 0 = never).
  double prune_interval = 60.0;
  /// Frontier-sync period: the node offers its account heads to one
  /// random neighbour this often, pulling/pushing whatever differs
  /// (Nano's frontier request / bulk pull; heals partitions). 0 = off.
  double frontier_interval = 10.0;
  /// Signature-verification cache for block and vote checks, usually
  /// shared across the whole cluster (crypto/sigcache.hpp). May be null.
  std::shared_ptr<crypto::SignatureCache> sigcache;
  /// Thread pool for the ledger's parallel-validation pipeline. May be
  /// null (serial validation).
  std::shared_ptr<support::ThreadPool> verify_pool;
  /// Shard each block's stateless checks across `verify_pool` before the
  /// serial apply phase. Needs the pool; simulation output is
  /// byte-identical either way for a given seed.
  bool parallel_validation = false;
  /// Shard the stateful phase of batched block application by conflict
  /// groups (Ledger::process_batch). Needs the pool; simulation output is
  /// byte-identical either way for a given seed.
  bool parallel_state = false;
  /// Per-node persistent store (storage/ledger_store.hpp); handed to the
  /// ledger via Ledger::attach_store. Null = no write-through.
  std::shared_ptr<storage::LedgerStore> store;
  /// Observability hookup (cluster-owned registry + tracer). A default
  /// probe is inert; see obs/probe.hpp.
  obs::Probe probe;
  /// Cluster-owned transaction-lifecycle tracker (obs/latency.hpp); the
  /// first replica to observe vote quorum for a tracked block stamps its
  /// confirmation. Null = lifecycle tracking off.
  obs::LatencyTracker* lifecycle = nullptr;
};

/// Statistics on vote-based confirmation (paper §IV-B).
struct ConfirmationStats {
  Percentiles time_to_confirm;   // block first seen -> quorum reached
  std::uint64_t blocks_confirmed = 0;
  std::uint64_t blocks_cemented = 0;
  std::uint64_t elections_started = 0;
  std::uint64_t elections_lost_rollbacks = 0;  // blocks rolled back
};

class LatticeNode {
 public:
  LatticeNode(net::Network& network, const LatticeParams& params,
              const crypto::KeyPair& genesis_key, Amount supply,
              const LatticeNodeConfig& config, Rng rng);

  net::NodeId id() const { return id_; }
  Ledger& ledger() { return ledger_; }
  const Ledger& ledger() const { return ledger_; }
  const LatticeNodeConfig& config() const { return config_; }

  /// Registers a keypair this node controls (it will auto-receive for it).
  void add_account(const crypto::KeyPair& key);
  /// Makes this node's first controlled account a voting representative
  /// identity (other accounts delegate to it via their blocks).
  const crypto::KeyPair* representative_key() const;

  void start();
  void set_online(bool online) { config_.online = online; }

  // ---- User actions (§VI-B: users order their own transactions) ----------
  /// Builds, signs, works, applies and gossips a send block.
  Result<BlockHash> send(const crypto::KeyPair& from,
                         const crypto::AccountId& to, Amount amount);
  /// Claims one pending send for a controlled account (receive or open).
  Result<BlockHash> receive_pending(const crypto::KeyPair& key,
                                    const BlockHash& send_hash);
  /// Re-delegates an account's representative.
  Result<BlockHash> change_representative(const crypto::KeyPair& key,
                                          const crypto::AccountId& new_rep);

  /// Injects a locally built block (tests / malicious scenarios).
  Status publish(const LatticeBlock& block);

  // ---- Confirmation queries (§IV-B) ---------------------------------------
  bool is_confirmed(const BlockHash& hash) const;
  const ConfirmationStats& confirmations() const { return conf_stats_; }
  std::size_t gap_pool_size() const;
  std::size_t active_elections() const { return elections_.size(); }

 private:
  void handle_message(const net::Message& msg);
  void handle_block(const LatticeBlock& block, net::NodeId from);
  void handle_vote(const Vote& vote);
  void process_block(const LatticeBlock& block,
                     net::NodeId from = net::kNoNode);
  /// Backfill: ask `peer` for a block we are missing (gap healing).
  void request_block(net::NodeId peer, const BlockHash& hash);
  void serve_block(net::NodeId peer, const BlockHash& hash);
  void after_applied(const LatticeBlock& block);
  void retry_gaps(const BlockHash& now_available);
  void start_or_join_election(const LatticeBlock& incoming);
  void schedule_revote(const Root& root);
  void finish_election(const Root& root);
  void vote_on(const LatticeBlock& block);
  void tally_confirmation(const BlockHash& hash, const Vote& vote);
  void maybe_auto_receive(const LatticeBlock& send_block);
  void schedule_prune();
  void schedule_frontier_sync();
  void send_frontiers(net::NodeId peer);
  void handle_frontiers(net::NodeId peer,
                        const std::vector<std::pair<crypto::AccountId,
                                                    BlockHash>>& frontiers);
  Result<BlockHash> build_and_publish(LatticeBlock block,
                                      const crypto::KeyPair& key);

  net::Network& net_;
  net::NodeId id_;
  LatticeNodeConfig config_;
  Ledger ledger_;
  Rng rng_;

  std::vector<crypto::KeyPair> accounts_;
  std::unordered_map<crypto::AccountId, std::size_t> account_index_;

  // Gap pools (paper §IV-B: a missing block stalls its successors).
  std::unordered_map<BlockHash, std::vector<LatticeBlock>> gap_previous_;
  std::unordered_map<BlockHash, std::vector<LatticeBlock>> gap_source_;

  // Conflict elections by root, plus candidate blocks by hash.
  std::unordered_map<Root, Election> elections_;
  std::unordered_map<BlockHash, LatticeBlock> candidates_;

  // Vote-weight tally per block for confirmation; votes arriving before
  // their block are buffered.
  std::unordered_map<BlockHash, std::unordered_map<crypto::AccountId, Amount>>
      confirmation_votes_;
  std::unordered_set<BlockHash> confirmed_;
  std::unordered_map<BlockHash, std::vector<Vote>> vote_buffer_;
  std::unordered_map<BlockHash, double> first_seen_;
  std::uint64_t vote_sequence_ = 1;

  ConfirmationStats conf_stats_;

  // Cached registry metrics (null when no probe is attached).
  obs::Counter* obs_blocks_received_ = nullptr;
  obs::Counter* obs_sends_ = nullptr;
  obs::Counter* obs_receives_ = nullptr;
  obs::Counter* obs_votes_cast_ = nullptr;
  obs::Counter* obs_confirmed_ = nullptr;
  obs::Counter* obs_elections_ = nullptr;
  obs::Histogram* profile_work_ = nullptr;
};

}  // namespace dlt::lattice
