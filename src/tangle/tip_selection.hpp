// Pluggable tip selection (ISSUE 8 tentpole): the strategy interface over
// Tangle::select_tip_with, plus the name/env plumbing benches and clusters
// use to pick a strategy at runtime.
//
// The strategies themselves live in tangle.cpp (select_tip_with) so the
// serial walk and the direct tip draws share the tangle's cone helpers;
// this header packages them behind a polymorphic TipSelector for code that
// composes strategies (adversary actors, benches sweeping strategy ×
// attacker power) and defines the canonical names:
//
//   mcmc     — the whitepaper's weighted random walk (default)
//   uniform  — uniform over current tips
//   mrts     — uniform over the most-recent tips
//
// Env knob: DLT_TIP_SELECTION=<name> overrides the configured strategy
// (apply_env_tip_selection), the same pattern as DLT_VERIFY_THREADS.
//
// Determinism contract: a selector draws from the Rng handed to select();
// nodes hand their dedicated selection stream (TangleNode::select_rng_,
// forked from the node RNG at construction), so switching strategies can
// never perturb issuance schedules or signing randomness. See DESIGN.md
// "Adversary determinism contract".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "tangle/tangle.hpp"

namespace dlt::tangle {

/// Strategy interface: one virtual call per selection. Implementations are
/// stateless; all state lives in the tangle and the caller's RNG.
class TipSelector {
 public:
  virtual ~TipSelector() = default;
  virtual TipStrategy strategy() const = 0;
  virtual TxHash select(const Tangle& tangle, Rng& rng,
                        const std::vector<Hash256>& spend_keys = {}) const = 0;
};

/// Factory for the named strategies (never null).
std::unique_ptr<TipSelector> make_tip_selector(TipStrategy strategy);

/// Canonical lower-case name ("mcmc" / "uniform" / "mrts").
const char* to_string(TipStrategy strategy);

/// Parses a canonical name; nullopt on anything else.
std::optional<TipStrategy> parse_tip_strategy(const std::string& name);

/// DLT_TIP_SELECTION env override; `fallback` when unset or unparsable.
TipStrategy tip_strategy_from_env(TipStrategy fallback);

/// Applies the DLT_TIP_SELECTION override to `params.tip_selection`.
void apply_env_tip_selection(TangleParams& params);

}  // namespace dlt::tangle
