#include "tangle/tip_selection.hpp"

#include <cstdlib>

namespace dlt::tangle {

namespace {

class StrategySelector final : public TipSelector {
 public:
  explicit StrategySelector(TipStrategy strategy) : strategy_(strategy) {}
  TipStrategy strategy() const override { return strategy_; }
  TxHash select(const Tangle& tangle, Rng& rng,
                const std::vector<Hash256>& spend_keys) const override {
    return tangle.select_tip_with(strategy_, rng, spend_keys);
  }

 private:
  TipStrategy strategy_;
};

}  // namespace

std::unique_ptr<TipSelector> make_tip_selector(TipStrategy strategy) {
  return std::make_unique<StrategySelector>(strategy);
}

const char* to_string(TipStrategy strategy) {
  switch (strategy) {
    case TipStrategy::kUniform:
      return "uniform";
    case TipStrategy::kMrts:
      return "mrts";
    case TipStrategy::kMcmc:
      break;
  }
  return "mcmc";
}

std::optional<TipStrategy> parse_tip_strategy(const std::string& name) {
  if (name == "mcmc") return TipStrategy::kMcmc;
  if (name == "uniform") return TipStrategy::kUniform;
  if (name == "mrts") return TipStrategy::kMrts;
  return std::nullopt;
}

TipStrategy tip_strategy_from_env(TipStrategy fallback) {
  const char* raw = std::getenv("DLT_TIP_SELECTION");
  if (!raw || !*raw) return fallback;
  if (auto parsed = parse_tip_strategy(raw)) return *parsed;
  return fallback;
}

void apply_env_tip_selection(TangleParams& params) {
  params.tip_selection = tip_strategy_from_env(params.tip_selection);
}

}  // namespace dlt::tangle
