#include "tangle/node.hpp"

#include <deque>

#include "obs/latency.hpp"

namespace dlt::tangle {

namespace {
// Interned once at static init; per-message paths compare/copy uint32 ids.
const net::MsgType kTxMessage = net::msg_type("tangle-tx");

TangleParams apply_overrides(TangleParams params,
                             const TangleNodeConfig& config) {
  if (config.tip_selection) params.tip_selection = *config.tip_selection;
  return params;
}
}  // namespace

TangleNode::TangleNode(net::Network& network, const TangleParams& params,
                       const TangleNodeConfig& config, Rng rng)
    : net_(network),
      id_(network.add_node()),
      config_(config),
      tangle_(apply_overrides(params, config)),
      rng_(std::move(rng)),
      select_rng_(rng_.fork()) {
  tangle_.set_probe(config_.probe);
  tangle_.set_trace_node(id_);
  tangle_.set_verify_pool(config_.verify_pool);
  tangle_.set_parallel_validation(config_.parallel_validation);
  tangle_.set_parallel_state(config_.parallel_state);
  if (config_.store) tangle_.attach_store(config_.store);
  if (config_.probe) {
    obs_issued_ = config_.probe.counter("tangle.txs_issued");
    obs_received_ = config_.probe.counter("tangle.txs_received");
    obs_gap_parked_ = config_.probe.counter("tangle.gap.parked");
  }
  net_.set_handler(id_, [this](const net::Message& msg) {
    handle_message(msg);
  });
}

Result<TxHash> TangleNode::issue(const crypto::KeyPair& issuer,
                                 const Hash256& payload,
                                 const Hash256& spend_key) {
  std::vector<Hash256> avoid;
  if (!spend_key.is_zero()) avoid.push_back(spend_key);
  // Selection draws come from the dedicated stream so strategy choice (or
  // strategy-dependent draw counts) cannot shift issuance/signing draws.
  const TxHash trunk = tangle_.select_tip(select_rng_, avoid);
  const TxHash branch = tangle_.select_tip(select_rng_, avoid);
  const TangleTx tx =
      make_tx(tangle_, issuer, trunk, branch, payload,
              net_.simulation().now(), rng_, spend_key);

  Status st = tangle_.attach(tx);
  if (!st.ok()) return st.error();
  obs::inc(obs_issued_);
  net_.gossip(id_, net::make_message(kTxMessage, tx,
                                     TangleTx::kSerializedSize));
  return tx.hash();
}

Status TangleNode::inject(const TangleTx& tx) {
  Status st = tangle_.attach(tx);
  if (!st.ok()) return st;
  obs::inc(obs_issued_);
  net_.gossip(id_, net::make_message(kTxMessage, tx,
                                     TangleTx::kSerializedSize));
  retry_gaps(tx.hash());
  return Status::success();
}

std::size_t TangleNode::gap_pool_size() const {
  std::size_t n = 0;
  for (const auto& [parent, waiting] : gap_pool_) n += waiting.size();
  return n;
}

void TangleNode::handle_message(const net::Message& msg) {
  if (msg.type != kTxMessage) return;
  process_tx(net::payload_as<TangleTx>(msg));
}

void TangleNode::process_tx(const TangleTx& tx) {
  if (tangle_.contains(tx.hash())) return;
  // Park on the first missing parent rather than burn a signature/work
  // check on a transaction that cannot attach yet.
  if (!tangle_.contains(tx.trunk)) {
    gap_pool_[tx.trunk].push_back(tx);
    obs::inc(obs_gap_parked_);
    return;
  }
  if (!tangle_.contains(tx.branch)) {
    gap_pool_[tx.branch].push_back(tx);
    obs::inc(obs_gap_parked_);
    return;
  }
  if (tangle_.attach(tx).ok()) {
    obs::inc(obs_received_);
    if (config_.lifecycle && config_.lifecycle_observer)
      config_.lifecycle->on_include(obs::trace_id(tx.hash()),
                                    net_.simulation().now(), id_);
    retry_gaps(tx.hash());
  }
}

void TangleNode::retry_gaps(const TxHash& now_available) {
  std::deque<TxHash> ready{now_available};
  while (!ready.empty()) {
    const TxHash parent = ready.front();
    ready.pop_front();
    auto it = gap_pool_.find(parent);
    if (it == gap_pool_.end()) continue;
    std::vector<TangleTx> waiting = std::move(it->second);
    gap_pool_.erase(it);
    for (const TangleTx& tx : waiting) {
      if (tangle_.contains(tx.hash())) continue;
      if (!tangle_.contains(tx.trunk)) {
        gap_pool_[tx.trunk].push_back(tx);
        obs::inc(obs_gap_parked_);
        continue;
      }
      if (!tangle_.contains(tx.branch)) {
        gap_pool_[tx.branch].push_back(tx);
        obs::inc(obs_gap_parked_);
        continue;
      }
      if (tangle_.attach(tx).ok()) {
        obs::inc(obs_received_);
        if (config_.lifecycle && config_.lifecycle_observer)
          config_.lifecycle->on_include(obs::trace_id(tx.hash()),
                                        net_.simulation().now(), id_);
        ready.push_back(tx.hash());
      }
    }
  }
}

}  // namespace dlt::tangle
