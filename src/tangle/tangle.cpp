#include "tangle/tangle.hpp"

#include <cmath>
#include <deque>

#include "crypto/hash.hpp"
#include "obs/profile.hpp"
#include "support/serialize.hpp"

namespace dlt::tangle {

TxHash TangleTx::hash() const {
  Writer w;
  w.fixed(issuer);
  w.fixed(trunk);
  w.fixed(branch);
  w.fixed(payload);
  w.fixed(spend_key);
  w.u64(static_cast<std::uint64_t>(timestamp * 1e6));
  return crypto::tagged_hash("dlt/tangle-tx",
                             ByteView{w.bytes().data(), w.size()});
}

Bytes TangleTx::work_payload() const {
  // Work binds the approval choice (trunk/branch), like IOTA's PoW over
  // the transaction trits.
  Writer w;
  w.fixed(trunk);
  w.fixed(branch);
  w.fixed(payload);
  return std::move(w).take();
}

void TangleTx::solve_work(int difficulty_bits) {
  const Bytes payload_bytes = work_payload();
  auto solution = crypto::solve(
      ByteView{payload_bytes.data(), payload_bytes.size()}, difficulty_bits);
  work = solution->nonce;
}

bool TangleTx::verify_work(int difficulty_bits) const {
  const Bytes payload_bytes = work_payload();
  return crypto::verify(ByteView{payload_bytes.data(), payload_bytes.size()},
                        work, difficulty_bits);
}

void TangleTx::sign(const crypto::KeyPair& key, Rng& rng) {
  issuer = key.account_id();
  pubkey = key.public_key();
  signature = key.sign(hash().view(), rng);
}

bool TangleTx::verify_signature() const {
  if (crypto::account_of(pubkey) != issuer) return false;
  return crypto::verify(pubkey, hash().view(), signature);
}

Tangle::Tangle(TangleParams params) : params_(std::move(params)) {
  TangleTx genesis;
  genesis.payload = crypto::tagged_hash("dlt/tangle-genesis", {});
  genesis_hash_ = genesis.hash();
  txs_.emplace(genesis_hash_, genesis);
  approvers_[genesis_hash_];
  tips_.insert(genesis_hash_);
}

const TangleTx* Tangle::find(const TxHash& hash) const {
  auto it = txs_.find(hash);
  return it == txs_.end() ? nullptr : &it->second;
}

std::unordered_set<TxHash> Tangle::past_cone(const TxHash& hash) const {
  std::unordered_set<TxHash> cone;
  if (!contains(hash)) return cone;
  std::deque<TxHash> frontier{hash};
  while (!frontier.empty()) {
    const TxHash cur = frontier.front();
    frontier.pop_front();
    if (!cone.insert(cur).second) continue;
    if (cur == genesis_hash_) continue;
    const TangleTx& tx = txs_.at(cur);
    frontier.push_back(tx.trunk);
    if (tx.branch != tx.trunk) frontier.push_back(tx.branch);
  }
  return cone;
}

std::unordered_set<Hash256> Tangle::cone_spend_keys(
    const TxHash& hash) const {
  std::unordered_set<Hash256> keys;
  for (const TxHash& h : past_cone(hash)) {
    const TangleTx& tx = txs_.at(h);
    if (!tx.spend_key.is_zero()) keys.insert(tx.spend_key);
  }
  return keys;
}

bool Tangle::cone_conflicts(const TxHash& a, const TxHash& b) const {
  // Two cones conflict if some spend key appears on BOTH sides via
  // DIFFERENT transactions. Build key->tx maps and compare.
  auto collect = [this](const TxHash& h) {
    std::unordered_map<Hash256, TxHash> out;
    for (const TxHash& t : past_cone(h)) {
      const TangleTx& tx = txs_.at(t);
      if (!tx.spend_key.is_zero()) out.emplace(tx.spend_key, t);
    }
    return out;
  };
  const auto ka = collect(a);
  if (ka.empty()) return false;
  for (const TxHash& t : past_cone(b)) {
    const TangleTx& tx = txs_.at(t);
    if (tx.spend_key.is_zero()) continue;
    auto it = ka.find(tx.spend_key);
    if (it != ka.end() && it->second != t) return true;
  }
  return false;
}

void Tangle::set_probe(obs::Probe probe) {
  probe_ = probe;
  obs_attached_ = probe_.counter("tangle.attached");
  obs_rejected_ = probe_.counter("tangle.rejected");
  pv_.wire(probe_);
}

Status Tangle::attach(const TangleTx& tx) {
  Status st = attach_impl(tx);
  if (st.ok()) {
    obs::inc(obs_attached_);
    if (probe_.tracer && probe_.tracer->enabled())
      probe_.tracer->record(tx.timestamp, obs::EventType::kTipAttached,
                            trace_node_, obs::trace_id(tx.hash()),
                            tx.branch == tx.trunk ? 1 : 2);
  } else {
    obs::inc(obs_rejected_);
  }
  return st;
}

Status Tangle::attach_impl(const TangleTx& tx) {
  const TxHash hash = tx.hash();
  if (txs_.count(hash)) return make_error("duplicate");
  if (parallel_validation()) {
    // Shard the stateless checks; both are pure functions of `tx`, so the
    // workers share no mutable state (the verdict members are distinct
    // memory locations). The join reports failures in the serial order
    // below (signature before work).
    const std::size_t n = params_.verify_work ? 2 : 1;
    core::StatelessVerdict verdict;
    pv_.record_batch(n, verify_pool_->thread_count());
    {
      obs::ProfileTimer timer(pv_.join_us);
      verify_pool_->parallel_for(n, [&](std::size_t k) {
        if (k == 0)
          verdict.sig_ok = tx.verify_signature();
        else
          verdict.work_ok = tx.verify_work(params_.work_bits);
      });
    }
    if (!verdict.sig_ok) return make_error("bad-signature");
    if (params_.verify_work && !verdict.work_ok)
      return make_error("insufficient-work");
  } else {
    if (!tx.verify_signature()) return make_error("bad-signature");
    if (params_.verify_work && !tx.verify_work(params_.work_bits))
      return make_error("insufficient-work");
  }
  if (!contains(tx.trunk)) return make_error("unknown-trunk");
  if (!contains(tx.branch)) return make_error("unknown-branch");

  // Consistency: the combined past cone must be conflict-free, and the
  // new transaction must not double-spend a key already in that cone
  // (its own re-attachment under the same key elsewhere is the conflict
  // the network later resolves by starvation).
  if (cone_conflicts(tx.trunk, tx.branch))
    return make_error("inconsistent-parents",
                      "trunk and branch cones double-spend");
  if (!tx.spend_key.is_zero()) {
    auto keys = cone_spend_keys(tx.trunk);
    auto branch_keys = cone_spend_keys(tx.branch);
    keys.insert(branch_keys.begin(), branch_keys.end());
    if (keys.count(tx.spend_key))
      return make_error("double-spend",
                        "spend key already present in the approved cone");
  }

  txs_.emplace(hash, tx);
  approvers_[tx.trunk].push_back(hash);
  if (tx.branch != tx.trunk) approvers_[tx.branch].push_back(hash);
  approvers_[hash];
  tips_.erase(tx.trunk);
  tips_.erase(tx.branch);
  tips_.insert(hash);
  if (!tx.spend_key.is_zero()) spends_[tx.spend_key].push_back(hash);
  return Status::success();
}

std::vector<TxHash> Tangle::tips() const {
  return std::vector<TxHash>(tips_.begin(), tips_.end());
}

std::size_t Tangle::cumulative_weight(const TxHash& hash) const {
  if (!contains(hash)) return 0;
  // Future cone size: BFS over approvers.
  std::unordered_set<TxHash> seen;
  std::deque<TxHash> frontier{hash};
  while (!frontier.empty()) {
    const TxHash cur = frontier.front();
    frontier.pop_front();
    if (!seen.insert(cur).second) continue;
    auto it = approvers_.find(cur);
    if (it == approvers_.end()) continue;
    for (const TxHash& child : it->second) frontier.push_back(child);
  }
  return seen.size();
}

double Tangle::confirmation_confidence(const TxHash& hash) const {
  if (!contains(hash) || tips_.empty()) return 0.0;
  std::size_t approving = 0;
  for (const TxHash& tip : tips_) {
    if (past_cone(tip).count(hash)) ++approving;
  }
  return static_cast<double>(approving) / static_cast<double>(tips_.size());
}

double Tangle::walk_confidence(const TxHash& hash, Rng& rng,
                               int samples) const {
  if (!contains(hash) || samples <= 0) return 0.0;
  int approving = 0;
  for (int i = 0; i < samples; ++i) {
    const TxHash tip = select_tip(rng);
    if (past_cone(tip).count(hash)) ++approving;
  }
  return static_cast<double>(approving) / samples;
}

TxHash Tangle::select_tip(Rng& rng,
                          const std::vector<Hash256>& spend_keys) const {
  // Biased random walk from genesis toward the tips, skipping children
  // whose cone conflicts with the issuer's intended spends.
  TxHash current = genesis_hash_;
  for (;;) {
    auto it = approvers_.find(current);
    if (it == approvers_.end() || it->second.empty()) return current;

    std::vector<TxHash> viable;
    std::vector<double> weight;
    for (const TxHash& child : it->second) {
      if (!spend_keys.empty()) {
        const auto cone_keys = cone_spend_keys(child);
        bool conflicted = false;
        for (const Hash256& k : spend_keys)
          if (cone_keys.count(k)) conflicted = true;
        if (conflicted) continue;
      }
      viable.push_back(child);
      weight.push_back(static_cast<double>(cumulative_weight(child)));
    }
    if (viable.empty()) return current;

    // Transition probability ~ exp(alpha * weight), normalized against
    // the max for numerical stability.
    double max_w = 0;
    for (double w : weight) max_w = std::max(max_w, w);
    std::vector<double> p(viable.size());
    double total = 0;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      p[i] = std::exp(params_.alpha * (weight[i] - max_w));
      total += p[i];
    }
    double ticket = rng.uniform01() * total;
    std::size_t pick = viable.size() - 1;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      ticket -= p[i];
      if (ticket <= 0) {
        pick = i;
        break;
      }
    }
    current = viable[pick];
  }
}

TangleTx make_tx(const Tangle& tangle, const crypto::KeyPair& issuer,
                 const TxHash& trunk, const TxHash& branch,
                 const Hash256& payload, double timestamp, Rng& rng,
                 const Hash256& spend_key) {
  TangleTx tx;
  tx.trunk = trunk;
  tx.branch = branch;
  tx.payload = payload;
  tx.spend_key = spend_key;
  tx.timestamp = timestamp;
  tx.solve_work(tangle.params().work_bits);
  tx.sign(issuer, rng);
  return tx;
}

}  // namespace dlt::tangle
