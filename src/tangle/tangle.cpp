#include "tangle/tangle.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>

#include "core/partition.hpp"
#include "crypto/hash.hpp"
#include "obs/profile.hpp"
#include "support/serialize.hpp"

namespace dlt::tangle {

namespace {

// The single definitions of the cone traversals and the stateful attach
// checks, parameterized over the transaction lookup so the serial path
// (lookup = the live txs_ map) and the sharded batch pipeline (lookup =
// frozen map + group overlay) cannot diverge. `lookup(hash)` returns the
// transaction or nullptr.

template <typename Lookup>
std::unordered_set<TxHash> past_cone_with(const Lookup& lookup,
                                          const TxHash& genesis_hash,
                                          const TxHash& hash) {
  std::unordered_set<TxHash> cone;
  if (!lookup(hash)) return cone;
  std::deque<TxHash> frontier{hash};
  while (!frontier.empty()) {
    const TxHash cur = frontier.front();
    frontier.pop_front();
    if (!cone.insert(cur).second) continue;
    if (cur == genesis_hash) continue;
    const TangleTx& tx = *lookup(cur);
    frontier.push_back(tx.trunk);
    if (tx.branch != tx.trunk) frontier.push_back(tx.branch);
  }
  return cone;
}

template <typename Lookup>
std::unordered_set<Hash256> cone_spend_keys_with(const Lookup& lookup,
                                                 const TxHash& genesis_hash,
                                                 const TxHash& hash) {
  std::unordered_set<Hash256> keys;
  for (const TxHash& h : past_cone_with(lookup, genesis_hash, hash)) {
    const TangleTx& tx = *lookup(h);
    if (!tx.spend_key.is_zero()) keys.insert(tx.spend_key);
  }
  return keys;
}

template <typename Lookup>
bool cone_conflicts_with(const Lookup& lookup, const TxHash& genesis_hash,
                         const TxHash& a, const TxHash& b) {
  // Two cones conflict if some spend key appears on BOTH sides via
  // DIFFERENT transactions. Build key->tx maps and compare.
  std::unordered_map<Hash256, TxHash> ka;
  for (const TxHash& t : past_cone_with(lookup, genesis_hash, a)) {
    const TangleTx& tx = *lookup(t);
    if (!tx.spend_key.is_zero()) ka.emplace(tx.spend_key, t);
  }
  if (ka.empty()) return false;
  for (const TxHash& t : past_cone_with(lookup, genesis_hash, b)) {
    const TangleTx& tx = *lookup(t);
    if (tx.spend_key.is_zero()) continue;
    auto it = ka.find(tx.spend_key);
    if (it != ka.end() && it->second != t) return true;
  }
  return false;
}

/// Parents present + combined cone conflict-free + no double spend of the
/// new transaction's own key within the approved cone.
template <typename Lookup>
Status check_attach_with(const Lookup& lookup, const TxHash& genesis_hash,
                         const TangleTx& tx) {
  if (!lookup(tx.trunk)) return make_error("unknown-trunk");
  if (!lookup(tx.branch)) return make_error("unknown-branch");

  // Consistency: the combined past cone must be conflict-free, and the
  // new transaction must not double-spend a key already in that cone
  // (its own re-attachment under the same key elsewhere is the conflict
  // the network later resolves by starvation).
  if (cone_conflicts_with(lookup, genesis_hash, tx.trunk, tx.branch))
    return make_error("inconsistent-parents",
                      "trunk and branch cones double-spend");
  if (!tx.spend_key.is_zero()) {
    auto keys = cone_spend_keys_with(lookup, genesis_hash, tx.trunk);
    auto branch_keys = cone_spend_keys_with(lookup, genesis_hash, tx.branch);
    keys.insert(branch_keys.begin(), branch_keys.end());
    if (keys.count(tx.spend_key))
      return make_error("double-spend",
                        "spend key already present in the approved cone");
  }
  return Status::success();
}

}  // namespace

TxHash TangleTx::hash() const {
  Writer w;
  w.fixed(issuer);
  w.fixed(trunk);
  w.fixed(branch);
  w.fixed(payload);
  w.fixed(spend_key);
  w.u64(static_cast<std::uint64_t>(timestamp * 1e6));
  w.u64(own_weight);
  return crypto::tagged_hash("dlt/tangle-tx",
                             ByteView{w.bytes().data(), w.size()});
}

Bytes TangleTx::serialize() const {
  Writer w;
  w.fixed(issuer);
  w.fixed(trunk);
  w.fixed(branch);
  w.fixed(payload);
  w.fixed(spend_key);
  // The hash grid truncates to microseconds; storage keeps the exact bits
  // so replayed trace timestamps match the original run.
  w.u64(std::bit_cast<std::uint64_t>(timestamp));
  w.u64(own_weight);
  w.u64(work);
  w.u64(pubkey);
  w.u64(signature.r);
  w.u64(signature.s);
  return std::move(w).take();
}

Result<TangleTx> TangleTx::deserialize(ByteView raw) {
  Reader r(raw);
  TangleTx tx;
  auto issuer = r.fixed<32>();
  if (!issuer) return issuer.error();
  tx.issuer = *issuer;
  auto trunk = r.fixed<32>();
  if (!trunk) return trunk.error();
  tx.trunk = *trunk;
  auto branch = r.fixed<32>();
  if (!branch) return branch.error();
  tx.branch = *branch;
  auto payload = r.fixed<32>();
  if (!payload) return payload.error();
  tx.payload = *payload;
  auto spend_key = r.fixed<32>();
  if (!spend_key) return spend_key.error();
  tx.spend_key = *spend_key;
  auto ts = r.u64();
  if (!ts) return ts.error();
  tx.timestamp = std::bit_cast<double>(*ts);
  auto weight = r.u64();
  if (!weight) return weight.error();
  tx.own_weight = *weight;
  auto work = r.u64();
  if (!work) return work.error();
  tx.work = *work;
  auto pubkey = r.u64();
  if (!pubkey) return pubkey.error();
  tx.pubkey = *pubkey;
  auto sr = r.u64();
  if (!sr) return sr.error();
  tx.signature.r = *sr;
  auto ss = r.u64();
  if (!ss) return ss.error();
  tx.signature.s = *ss;
  if (!r.done()) return make_error("site-record-trailing-bytes");
  return tx;
}

Bytes TangleTx::work_payload() const {
  // Work binds the approval choice (trunk/branch), like IOTA's PoW over
  // the transaction trits.
  Writer w;
  w.fixed(trunk);
  w.fixed(branch);
  w.fixed(payload);
  return std::move(w).take();
}

void TangleTx::solve_work(int difficulty_bits) {
  const Bytes payload_bytes = work_payload();
  auto solution = crypto::solve(
      ByteView{payload_bytes.data(), payload_bytes.size()}, difficulty_bits);
  work = solution->nonce;
}

bool TangleTx::verify_work(int difficulty_bits) const {
  const Bytes payload_bytes = work_payload();
  return crypto::verify(ByteView{payload_bytes.data(), payload_bytes.size()},
                        work, difficulty_bits);
}

void TangleTx::sign(const crypto::KeyPair& key, Rng& rng) {
  issuer = key.account_id();
  pubkey = key.public_key();
  signature = key.sign(hash().view(), rng);
}

bool TangleTx::verify_signature() const {
  if (crypto::account_of(pubkey) != issuer) return false;
  return crypto::verify(pubkey, hash().view(), signature);
}

Tangle::Tangle(TangleParams params) : params_(std::move(params)) {
  TangleTx genesis;
  genesis.payload = crypto::tagged_hash("dlt/tangle-genesis", {});
  genesis_hash_ = genesis.hash();
  txs_.emplace(genesis_hash_, genesis);
  approvers_[genesis_hash_];
  tips_.insert(genesis_hash_);
}

const TangleTx* Tangle::find(const TxHash& hash) const {
  auto it = txs_.find(hash);
  return it == txs_.end() ? nullptr : &it->second;
}

std::unordered_set<TxHash> Tangle::past_cone(const TxHash& hash) const {
  return past_cone_with([this](const TxHash& h) { return find(h); },
                        genesis_hash_, hash);
}

std::unordered_set<Hash256> Tangle::cone_spend_keys(
    const TxHash& hash) const {
  return cone_spend_keys_with([this](const TxHash& h) { return find(h); },
                              genesis_hash_, hash);
}

bool Tangle::cone_conflicts(const TxHash& a, const TxHash& b) const {
  return cone_conflicts_with([this](const TxHash& h) { return find(h); },
                             genesis_hash_, a, b);
}

void Tangle::set_probe(obs::Probe probe) {
  probe_ = probe;
  obs_attached_ = probe_.counter("tangle.attached");
  obs_rejected_ = probe_.counter("tangle.rejected");
  pv_.wire(probe_);
  ps_.wire(probe_);
}

void Tangle::record_attach(const TangleTx& tx, const Status& st) {
  if (st.ok()) {
    obs::inc(obs_attached_);
    if (probe_.tracer && probe_.tracer->enabled())
      probe_.tracer->record(tx.timestamp, obs::EventType::kTipAttached,
                            trace_node_, obs::trace_id(tx.hash()),
                            tx.branch == tx.trunk ? 1 : 2);
  } else {
    obs::inc(obs_rejected_);
  }
}

Status Tangle::attach(const TangleTx& tx) {
  Status st = attach_impl(tx);
  record_attach(tx, st);
  return st;
}

core::StatelessVerdict Tangle::compute_verdict(const TangleTx& tx) const {
  // Shard the stateless checks; both are pure functions of `tx`, so the
  // workers share no mutable state (the verdict members are distinct
  // memory locations). The consume phase reports failures in the serial
  // order (signature before work).
  const std::size_t n = params_.verify_work ? 2 : 1;
  core::StatelessVerdict verdict;
  pv_.record_batch(n, verify_pool_->thread_count());
  {
    obs::ProfileTimer timer(pv_.join_us);
    verify_pool_->parallel_for(n, [&](std::size_t k) {
      if (k == 0)
        verdict.sig_ok = tx.verify_signature();
      else
        verdict.work_ok = tx.verify_work(params_.work_bits);
    });
  }
  return verdict;
}

Status Tangle::check_stateless(const TangleTx& tx,
                               const core::StatelessVerdict* verdict) const {
  const bool sig_ok = verdict ? verdict->sig_ok : tx.verify_signature();
  if (!sig_ok) return make_error("bad-signature");
  if (params_.verify_work) {
    const bool work_ok =
        verdict ? verdict->work_ok : tx.verify_work(params_.work_bits);
    if (!work_ok) return make_error("insufficient-work");
  }
  // Weight policy: a declared weight of zero would make the transaction
  // invisible to the walk; one above the cap is the large-weight-spam
  // vector (an attacker buying cumulative weight per unit of hashcash).
  if (tx.own_weight == 0 || tx.own_weight > params_.max_own_weight)
    return make_error("bad-weight",
                      "own weight outside [1, max_own_weight]");
  return Status::success();
}

void Tangle::apply_attached(const TangleTx& tx, const TxHash& hash) {
  const bool trunk_was_tip = tips_.count(tx.trunk) != 0;
  const bool branch_was_tip =
      tx.branch != tx.trunk && tips_.count(tx.branch) != 0;
  txs_.emplace(hash, tx);
  approvers_[tx.trunk].push_back(hash);
  if (tx.branch != tx.trunk) approvers_[tx.branch].push_back(hash);
  approvers_[hash];
  tips_.erase(tx.trunk);
  tips_.erase(tx.branch);
  tips_.insert(hash);
  if (!tx.spend_key.is_zero()) spends_[tx.spend_key].push_back(hash);
  if (store_) {
    store_->log().append(storage::RecordType::kSite, hash, tx.serialize());
    if (trunk_was_tip) store_->state().erase(tx.trunk);
    if (branch_was_tip) store_->state().erase(tx.branch);
    store_->state().put(hash, {});
    store_->commit();
  }
}

Status Tangle::attach_one(const TangleTx& tx, const TxHash& hash,
                          const core::StatelessVerdict* verdict) {
  if (txs_.count(hash)) return make_error("duplicate");
  if (Status st = check_stateless(tx, verdict); !st.ok()) return st;
  const auto lookup = [this](const TxHash& h) { return find(h); };
  if (Status st = check_attach_with(lookup, genesis_hash_, tx); !st.ok())
    return st;
  apply_attached(tx, hash);
  return Status::success();
}

Status Tangle::attach_impl(const TangleTx& tx) {
  const TxHash hash = tx.hash();
  if (txs_.count(hash)) return make_error("duplicate");
  if (parallel_validation()) {
    const core::StatelessVerdict verdict = compute_verdict(tx);
    return attach_one(tx, hash, &verdict);
  }
  return attach_one(tx, hash, nullptr);
}

std::vector<Status> Tangle::attach_batch(const std::vector<TangleTx>& txs) {
  const std::size_t n = txs.size();
  std::vector<Status> out(n);
  if (!parallel_state() || n < 2) {
    for (std::size_t i = 0; i < n; ++i) out[i] = attach(txs[i]);
    return out;
  }

  // Collect on the calling thread: hashes, frozen-duplicate flags and the
  // stateless verdicts, in batch order (mirroring the serial loop, which
  // skips the stateless checks for transactions the tangle already holds).
  std::vector<TxHash> hashes(n);
  std::vector<std::uint8_t> dup_frozen(n, 0);
  std::vector<core::StatelessVerdict> verdicts(n);
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = txs[i].hash();
    dup_frozen[i] = txs_.count(hashes[i]) ? 1 : 0;
    if (!dup_frozen[i]) verdicts[i] = compute_verdict(txs[i]);
  }

  // Key extraction: a transaction touches its own hash (duplicate
  // detection, approver/tip bookkeeping) and its two parents. An in-batch
  // ancestor chain shares hash keys link by link, so every transaction's
  // reachable in-batch cone lands in its group transitively; the frozen
  // part of the cone is read-only for the whole check phase. The spend
  // key is included so same-key double spends group together.
  core::ConflictPartitioner part(n);
  for (std::size_t i = 0; i < n; ++i) {
    part.add_key(i, hashes[i]);
    part.add_key(i, txs[i].trunk);
    part.add_key(i, txs[i].branch);
    if (!txs[i].spend_key.is_zero()) part.add_key(i, txs[i].spend_key);
  }
  const auto groups = part.groups();
  ps_.record_batch(groups.size(), verify_pool_->thread_count());
  if (groups.size() < 2) {
    // One spanning group: nothing to parallelize; serial reference path.
    ps_.record_demotion();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = attach_one(txs[i], hashes[i],
                          dup_frozen[i] ? nullptr : &verdicts[i]);
      record_attach(txs[i], out[i]);
    }
    return out;
  }

  // Group checks: pure cone traversals against the frozen tangle plus a
  // group-local overlay of the transactions this group has accepted so
  // far. Workers write only their own status slots.
  {
    obs::ProfileTimer timer(ps_.join_us);
    verify_pool_->parallel_for(groups.size(), [&](std::size_t g) {
      std::unordered_map<TxHash, const TangleTx*> added;
      const auto lookup = [&](const TxHash& h) -> const TangleTx* {
        auto it = added.find(h);
        if (it != added.end()) return it->second;
        return find(h);
      };
      for (const std::size_t i : groups[g]) {
        if (added.count(hashes[i]) != 0 || txs_.count(hashes[i]) != 0) {
          out[i] = make_error("duplicate");
          continue;
        }
        Status st = check_stateless(txs[i], &verdicts[i]);
        if (st.ok()) st = check_attach_with(lookup, genesis_hash_, txs[i]);
        out[i] = st;
        if (out[i].ok()) added.emplace(hashes[i], &txs[i]);
      }
    });
  }

  // Commit: replay the exact serial sequence in batch order — mutations
  // for the passing transactions, counters and tip_attached traces for
  // every transaction, exactly as the attach() loop would emit them.
  std::size_t applied = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i].ok()) {
      apply_attached(txs[i], hashes[i]);
      ++applied;
    }
    record_attach(txs[i], out[i]);
  }
  ps_.record_applied(applied);
  return out;
}

std::vector<TxHash> Tangle::tips() const {
  return std::vector<TxHash>(tips_.begin(), tips_.end());
}

void Tangle::attach_store(std::shared_ptr<storage::LedgerStore> store) {
  store_ = std::move(store);
  if (!store_) return;
  if (!store_->log().contains(storage::RecordType::kSite, genesis_hash_)) {
    store_->log().append(storage::RecordType::kSite, genesis_hash_,
                         txs_.at(genesis_hash_).serialize());
    store_->state().put(genesis_hash_, {});
  }
  store_->commit();
}

std::size_t Tangle::replay_from_store() {
  if (!store_) return 0;
  std::vector<Bytes> records;
  store_->log().for_each(
      [&](storage::RecordType type, const Hash256& key, ByteView payload) {
        (void)key;
        if (type == storage::RecordType::kSite)
          records.emplace_back(payload.begin(), payload.end());
      });
  std::size_t accepted = 0;
  for (const Bytes& raw : records) {
    auto tx = TangleTx::deserialize(raw);
    if (!tx) continue;
    if (txs_.count(tx->hash())) continue;  // genesis / already replayed
    if (attach(*tx).ok()) ++accepted;
  }
  return accepted;
}

std::uint64_t Tangle::prune_history() {
  if (!store_) return 0;
  bool erased = false;
  for (const auto& [hash, tx] : txs_) {
    if (hash == genesis_hash_ || tips_.count(hash)) continue;
    erased |= store_->log().erase(storage::RecordType::kSite, hash);
  }
  if (!erased) return 0;
  const std::uint64_t reclaimed = store_->log().compact();
  store_->note_pruned(reclaimed);
  store_->commit();
  return reclaimed;
}

std::size_t Tangle::cumulative_weight(const TxHash& hash) const {
  if (!contains(hash)) return 0;
  // Future-cone BFS over approvers, summing declared own weights (the
  // genesis carries the default weight of 1, as does every vanilla tx).
  std::unordered_set<TxHash> seen;
  std::deque<TxHash> frontier{hash};
  std::size_t weight = 0;
  while (!frontier.empty()) {
    const TxHash cur = frontier.front();
    frontier.pop_front();
    if (!seen.insert(cur).second) continue;
    weight += static_cast<std::size_t>(txs_.at(cur).own_weight);
    auto it = approvers_.find(cur);
    if (it == approvers_.end()) continue;
    for (const TxHash& child : it->second) frontier.push_back(child);
  }
  return weight;
}

double Tangle::confirmation_confidence(const TxHash& hash) const {
  if (!contains(hash) || tips_.empty()) return 0.0;
  std::size_t approving = 0;
  for (const TxHash& tip : tips_) {
    if (past_cone(tip).count(hash)) ++approving;
  }
  return static_cast<double>(approving) / static_cast<double>(tips_.size());
}

double Tangle::walk_confidence(const TxHash& hash, Rng& rng,
                               int samples) const {
  if (!contains(hash) || samples <= 0) return 0.0;
  int approving = 0;
  for (int i = 0; i < samples; ++i) {
    const TxHash tip = select_tip(rng);
    if (past_cone(tip).count(hash)) ++approving;
  }
  return static_cast<double>(approving) / samples;
}

TxHash Tangle::select_tip(Rng& rng,
                          const std::vector<Hash256>& spend_keys) const {
  return select_tip_with(params_.tip_selection, rng, spend_keys);
}

TxHash Tangle::select_tip_with(TipStrategy strategy, Rng& rng,
                               const std::vector<Hash256>& spend_keys) const {
  if (strategy != TipStrategy::kMcmc) {
    // Direct tip draw. Candidates are the tips whose past cone does not
    // conflict with the issuer's pending spends, in canonical (sorted
    // hash) order so the draw is independent of hash-map iteration.
    std::vector<TxHash> viable;
    viable.reserve(tips_.size());
    for (const TxHash& tip : tips_) {
      if (!spend_keys.empty()) {
        const auto cone_keys = cone_spend_keys(tip);
        bool conflicted = false;
        for (const Hash256& k : spend_keys)
          if (cone_keys.count(k)) conflicted = true;
        if (conflicted) continue;
      }
      viable.push_back(tip);
    }
    // Every tip conflicted: genesis is always a clean attachment point
    // (no draw consumed; the caller's RNG stream stays aligned).
    if (viable.empty()) return genesis_hash_;
    std::sort(viable.begin(), viable.end());
    if (strategy == TipStrategy::kMrts) {
      double max_ts = 0.0;
      for (const TxHash& tip : viable)
        max_ts = std::max(max_ts, find(tip)->timestamp);
      std::vector<TxHash> recent;
      for (const TxHash& tip : viable)
        if (find(tip)->timestamp == max_ts) recent.push_back(tip);
      viable = std::move(recent);
    }
    // Exactly one uniform01() draw (uniform(bound) would reject-sample a
    // data-dependent number of raw words; the draw-count contract in
    // tip_selection_test.cpp pins one draw per selection).
    const auto pick = static_cast<std::size_t>(
        rng.uniform01() * static_cast<double>(viable.size()));
    return viable[std::min(pick, viable.size() - 1)];
  }

  // MCMC: biased random walk from genesis toward the tips, skipping
  // children whose cone conflicts with the issuer's intended spends.
  TxHash current = genesis_hash_;
  for (;;) {
    auto it = approvers_.find(current);
    if (it == approvers_.end() || it->second.empty()) return current;

    std::vector<TxHash> viable;
    std::vector<double> weight;
    for (const TxHash& child : it->second) {
      if (!spend_keys.empty()) {
        const auto cone_keys = cone_spend_keys(child);
        bool conflicted = false;
        for (const Hash256& k : spend_keys)
          if (cone_keys.count(k)) conflicted = true;
        if (conflicted) continue;
      }
      viable.push_back(child);
      weight.push_back(static_cast<double>(cumulative_weight(child)));
    }
    if (viable.empty()) return current;

    // Transition probability ~ exp(alpha * weight), normalized against
    // the max for numerical stability.
    double max_w = 0;
    for (double w : weight) max_w = std::max(max_w, w);
    std::vector<double> p(viable.size());
    double total = 0;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      p[i] = std::exp(params_.alpha * (weight[i] - max_w));
      total += p[i];
    }
    double ticket = rng.uniform01() * total;
    std::size_t pick = viable.size() - 1;
    for (std::size_t i = 0; i < viable.size(); ++i) {
      ticket -= p[i];
      if (ticket <= 0) {
        pick = i;
        break;
      }
    }
    current = viable[pick];
  }
}

TangleTx make_tx(const Tangle& tangle, const crypto::KeyPair& issuer,
                 const TxHash& trunk, const TxHash& branch,
                 const Hash256& payload, double timestamp, Rng& rng,
                 const Hash256& spend_key, std::uint64_t own_weight) {
  TangleTx tx;
  tx.trunk = trunk;
  tx.branch = branch;
  tx.payload = payload;
  tx.spend_key = spend_key;
  tx.timestamp = timestamp;
  tx.own_weight = own_weight;
  tx.solve_work(tangle.params().work_bits);
  tx.sign(issuer, rng);
  return tx;
}

}  // namespace dlt::tangle
