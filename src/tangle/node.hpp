// An IOTA-style network participant: a full tangle replica behind a gossip
// endpoint (paper §II-B footnote 1 — the third ledger paradigm).
//
// Every node keeps its own Tangle replica. Issuing a transaction runs the
// MCMC tip selection against the local replica, solves the per-transaction
// hashcash, signs, attaches locally and gossips. Received transactions
// whose parents have not arrived yet (gossip floods from different origins
// race over different paths) park in a gap pool keyed by the first missing
// parent and are retried when it lands — the tangle's analogue of the
// lattice gap_previous pool (§IV-B).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "obs/probe.hpp"
#include "tangle/tangle.hpp"

namespace dlt::obs {
class LatencyTracker;
}

namespace dlt::tangle {

struct TangleNodeConfig {
  /// Thread pool for the tangle's parallel-validation pipeline. May be
  /// null (serial validation).
  std::shared_ptr<support::ThreadPool> verify_pool;
  /// Shard each transaction's stateless checks (signature + hashcash)
  /// across `verify_pool` before the serial cone phase. Needs the pool;
  /// attach outcomes are byte-identical either way for a given seed.
  bool parallel_validation = false;
  /// Shard the stateful phase of batched attaches by conflict groups
  /// (Tangle::attach_batch). Needs the pool; outcomes are byte-identical
  /// either way for a given seed.
  bool parallel_state = false;
  /// Per-node persistent store (storage/ledger_store.hpp); handed to the
  /// tangle via Tangle::attach_store. Null = no write-through.
  std::shared_ptr<storage::LedgerStore> store;
  /// Observability hookup (cluster-owned registry + tracer). A default
  /// probe is inert; see obs/probe.hpp.
  obs::Probe probe;
  /// Cluster-owned transaction-lifecycle tracker (obs/latency.hpp).
  /// Null = lifecycle tracking off.
  obs::LatencyTracker* lifecycle = nullptr;
  /// Inclusion is stamped when the *reference replica* attaches a tracked
  /// transaction; exactly one node per cluster is the observer so stamps
  /// stay deterministic.
  bool lifecycle_observer = false;
  /// Per-node tip-selection override (ISSUE 8): replaces the cluster-wide
  /// TangleParams::tip_selection for this node's replica when set, so
  /// attack experiments can mix strategies within one cluster.
  std::optional<TipStrategy> tip_selection;
};

class TangleNode {
 public:
  TangleNode(net::Network& network, const TangleParams& params,
             const TangleNodeConfig& config, Rng rng);

  net::NodeId id() const { return id_; }
  Tangle& tangle() { return tangle_; }
  const Tangle& tangle() const { return tangle_; }
  Rng& rng() { return rng_; }

  /// Issues one transaction: two tip selections (configured strategy)
  /// against the local replica, hashcash, signature, local attach, gossip.
  /// The timestamp is the current simulation time, so traces stay
  /// deterministic. Tip selections draw from the dedicated selection
  /// stream (select_rng()); work/signing draw from rng().
  Result<TxHash> issue(const crypto::KeyPair& issuer, const Hash256& payload,
                       const Hash256& spend_key = {});

  /// Adversary hook (ISSUE 8, core/adversary.hpp): attaches an externally
  /// built, already-signed transaction to the local replica and gossips it
  /// on success — the release path for parasite chains and spam bursts.
  /// Draws no node randomness, so an adversary that never calls it leaves
  /// the honest trace byte-identical.
  Status inject(const TangleTx& tx);

  /// The dedicated tip-selection RNG stream, forked from the node RNG at
  /// construction so selector strategies (and extra walk_confidence
  /// sampling) can never perturb issuance timing or signing randomness.
  Rng& select_rng() { return select_rng_; }

  /// Transactions parked waiting for a missing parent.
  std::size_t gap_pool_size() const;

 private:
  void handle_message(const net::Message& msg);
  void process_tx(const TangleTx& tx);
  /// Re-attaches parked transactions whose parents became available,
  /// cascading (FIFO) through dependents of dependents.
  void retry_gaps(const TxHash& now_available);

  net::Network& net_;
  net::NodeId id_;
  TangleNodeConfig config_;
  Tangle tangle_;
  Rng rng_;
  Rng select_rng_;  // forked from rng_ at construction (see select_rng())

  // Parked transactions keyed by the first missing parent (§IV-B gap
  // healing). A tx re-parks under its other parent if that one is also
  // missing when the first arrives.
  std::unordered_map<TxHash, std::vector<TangleTx>> gap_pool_;

  // Cached registry metrics (null when no probe is attached).
  obs::Counter* obs_issued_ = nullptr;
  obs::Counter* obs_received_ = nullptr;
  obs::Counter* obs_gap_parked_ = nullptr;
};

}  // namespace dlt::tangle
