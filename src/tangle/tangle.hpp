// An IOTA-style tangle (paper §II-B, footnote 1: "Other DAG approaches
// are IOTA and Byteball").
//
// Where Nano's block-lattice gives each account its own chain, the tangle
// is a single DAG in which every transaction approves TWO earlier
// transactions (trunk and branch). Issuers perform a small proof of work
// per transaction (spam protection, as in §III-B) and implicitly vote for
// the history they approve. Confirmation confidence of a transaction is
// the fraction of current tips whose past cone contains it; cumulative
// weight (1 + number of approvers, direct and indirect) drives the
// biased random walk used for tip selection (the whitepaper's MCMC).
//
// Double spends are modelled with an optional `spend_key`: two
// transactions sharing a spend key conflict, a consistent cone may
// contain at most one of them, and the network's tip selection starves
// the losing side -- the tangle's §IV analogue of fork resolution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/validation.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"
#include "obs/parallel.hpp"
#include "obs/probe.hpp"
#include "storage/ledger_store.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dlt::tangle {

using TxHash = Hash256;

struct TangleTx {
  crypto::AccountId issuer;
  TxHash trunk;    // first approved transaction
  TxHash branch;   // second approved transaction (may equal trunk)
  Hash256 payload; // opaque content commitment
  /// Two transactions with the same (nonzero) spend key conflict.
  Hash256 spend_key;
  double timestamp = 0.0;
  /// Issuer-declared weight this transaction contributes to every cone it
  /// joins (the whitepaper's "own weight"; 1 in vanilla IOTA). Hashed, so
  /// it cannot be reweighted after signing; capped by
  /// TangleParams::max_own_weight at attach (large-weight spam defence).
  std::uint64_t own_weight = 1;
  std::uint64_t work = 0;
  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  TxHash hash() const;
  Bytes work_payload() const;
  void solve_work(int difficulty_bits);
  bool verify_work(int difficulty_bits) const;
  void sign(const crypto::KeyPair& key, Rng& rng);
  bool verify_signature() const;

  /// Lossless storage codec (RecordType::kSite): the canonical fields with
  /// the timestamp double bit-cast, plus work/pubkey/signature.
  Bytes serialize() const;
  static Result<TangleTx> deserialize(ByteView raw);

  static constexpr std::size_t kSerializedSize = 32 * 5 + 8 * 5;
};

/// Tip-selection strategy (ISSUE 8). The whitepaper's MCMC walk is the
/// reference; `uniform` and `mrts` are the degenerate strategies the SoK
/// literature uses as attack baselines (uniform random tip, most-recent
/// tips). Pluggable per tangle via TangleParams::tip_selection, per node
/// via TangleNodeConfig::tip_selection, and per process via the
/// DLT_TIP_SELECTION env knob (tangle/tip_selection.hpp).
enum class TipStrategy {
  kMcmc = 0,     // biased random walk, exp(alpha * cumulative weight)
  kUniform = 1,  // uniform over current tips (canonical hash order)
  kMrts = 2,     // uniform over the most-recent (max timestamp) tips
};

struct TangleParams {
  int work_bits = 4;
  bool verify_work = true;
  /// MCMC walk bias: 0 = uniform random walk, higher = steeper preference
  /// for heavy branches (faster conflict starvation, more orphaned tips).
  double alpha = 0.05;
  /// Strategy select_tip() / walk_confidence() dispatch to.
  TipStrategy tip_selection = TipStrategy::kMcmc;
  /// Upper bound on TangleTx::own_weight a node accepts ("bad-weight"
  /// otherwise). 1 = vanilla IOTA; raising it admits weighted transactions
  /// and with them the large-weight-spam adversary (ISSUE 9 satellite).
  std::uint64_t max_own_weight = 1;
};

class Tangle {
 public:
  explicit Tangle(TangleParams params);

  const TangleParams& params() const { return params_; }
  const TxHash& genesis() const { return genesis_hash_; }
  std::size_t size() const { return txs_.size(); }

  /// Validates and attaches a transaction: signature, work, both parents
  /// present, and the union of the parents' past cones free of spend-key
  /// conflicts (with each other and with the new transaction).
  Status attach(const TangleTx& tx);

  /// Attaches a batch of transactions in order, returning one Status per
  /// transaction (index-aligned). With parallel_state off this is exactly
  /// an attach() loop. With it on, transactions are union-found into
  /// conflict groups on the state keys they touch (own hash, trunk,
  /// branch, spend key), groups are checked concurrently against the
  /// frozen pre-batch tangle plus a group-local overlay, and the passing
  /// transactions are committed — counters and tip_attached traces
  /// replayed — serially in batch order. Byte-identical statuses, traces
  /// and tangle state either way (tests/state_sharding_test.cpp).
  std::vector<Status> attach_batch(const std::vector<TangleTx>& txs);

  bool contains(const TxHash& hash) const { return txs_.count(hash) != 0; }
  const TangleTx* find(const TxHash& hash) const;

  /// Transactions no one approves yet.
  std::vector<TxHash> tips() const;
  std::size_t tip_count() const { return tips_.size(); }

  /// Sum of own weights over `hash`'s future cone (itself plus every
  /// transaction referencing it, directly or transitively) -- the
  /// whitepaper's cumulative weight. With unit own weights this is the
  /// classic "1 + number of approvers".
  std::size_t cumulative_weight(const TxHash& hash) const;

  /// Fraction of current tips whose past cone contains `hash`; the
  /// tangle's confirmation confidence (compare §IV's depth rule).
  double confirmation_confidence(const TxHash& hash) const;

  /// Monte-Carlo confidence: the probability that a fresh transaction's
  /// tip-selection walk approves `hash`. Unlike the tip fraction, stale
  /// abandoned tips barely matter because the walk rarely reaches them.
  double walk_confidence(const TxHash& hash, Rng& rng,
                         int samples = 64) const;

  /// Tip selection with the configured strategy (params().tip_selection):
  /// the MCMC weighted random walk by default, or one of the pluggable
  /// baseline strategies. Never selects into a cone that conflicts with
  /// `spend_keys` (the issuer's own pending spends). Returns a tip (or an
  /// interior vertex when every tip's cone conflicts — MCMC — / genesis —
  /// uniform, mrts).
  TxHash select_tip(Rng& rng,
                    const std::vector<Hash256>& spend_keys = {}) const;

  /// Tip selection with an explicit strategy (ignores the configured one).
  /// RNG discipline, pinned by tests/tip_selection_test.cpp: `uniform` and
  /// `mrts` consume exactly one uniform01() draw per selection; `mcmc`
  /// consumes one per walk step. Candidate orderings are canonical (sorted
  /// by hash), so the draw count and the selected tip depend only on the
  /// tangle contents and the RNG stream — never on worker counts.
  TxHash select_tip_with(TipStrategy strategy, Rng& rng,
                         const std::vector<Hash256>& spend_keys = {}) const;

  /// Every transaction in `hash`'s past cone (ancestors, incl. itself).
  std::unordered_set<TxHash> past_cone(const TxHash& hash) const;

  /// All spend keys present in the past cone of `hash`.
  std::unordered_set<Hash256> cone_spend_keys(const TxHash& hash) const;

  /// Storage model: one node per transaction.
  std::uint64_t stored_bytes() const {
    return txs_.size() * TangleTx::kSerializedSize;
  }

  // ---- Persistent storage (ISSUE 9) ---------------------------------------
  /// Writes the tangle through to `store`: every attached transaction is
  /// appended to the log under RecordType::kSite and the state backend
  /// mirrors the current tip set (the head-only state §V-B keeps). On a
  /// fresh store the genesis site is persisted; on a recovered one
  /// existing records are kept — combine with replay_from_store().
  void attach_store(std::shared_ptr<storage::LedgerStore> store);
  const storage::LedgerStore* store() const { return store_.get(); }

  /// Recovery: decodes every kSite record in append order and re-offers it
  /// to attach(). Append order is admission order, so parents always
  /// precede children. Returns transactions accepted.
  std::size_t replay_from_store();

  /// §V-B head-only pruning as a log-catalog operation: erases the kSite
  /// records of every interior (non-tip, non-genesis) transaction and
  /// compacts the log. The in-RAM DAG is untouched — cone checks still
  /// work — so this is purely a storage discipline. Returns the physical
  /// bytes reclaimed by compaction.
  std::uint64_t prune_history();

  /// Observability: tangle.attached / tangle.rejected counters plus a
  /// tip_attached trace per accepted transaction. Trace timestamps use
  /// TangleTx::timestamp (issuer-assigned logical time — the tangle has
  /// no simulation clock), keeping traces deterministic.
  void set_probe(obs::Probe probe);

  /// Node id stamped on tip_attached trace events. Standalone tangles keep
  /// the historical 0; cluster replicas set their net::NodeId so per-node
  /// attach order is visible in traces.
  void set_trace_node(std::uint32_t node) { trace_node_ = node; }

  /// Thread pool for the parallel-validation pipeline. Null = serial.
  void set_verify_pool(std::shared_ptr<support::ThreadPool> pool) {
    verify_pool_ = std::move(pool);
  }
  /// Shards attach()'s stateless checks (signature + hashcash, both pure —
  /// TangleTx::hash() recomputes rather than memoizes) across the verify
  /// pool before the serial cone/conflict phase. Needs the pool; attach
  /// outcomes are identical either way.
  void set_parallel_validation(bool on) { parallel_validation_ = on; }
  bool parallel_validation() const {
    return parallel_validation_ && verify_pool_ != nullptr;
  }
  /// Shards the stateful phase of attach_batch() by conflict groups (see
  /// attach_batch). No-op without a pool; implies the verdict pipeline so
  /// group workers only evaluate pure cone traversals.
  void set_parallel_state(bool on) { parallel_state_ = on; }
  bool parallel_state() const {
    return parallel_state_ && verify_pool_ != nullptr;
  }

 private:
  Status attach_impl(const TangleTx& tx);
  /// Duplicate check + stateless checks + cone checks + apply, with an
  /// optional pre-computed verdict (batch pipeline / demoted batches).
  Status attach_one(const TangleTx& tx, const TxHash& hash,
                    const core::StatelessVerdict* verdict);
  /// Runs the two stateless checks across the verify pool into a verdict
  /// (signature first, then hashcash — the serial reporting order).
  core::StatelessVerdict compute_verdict(const TangleTx& tx) const;
  /// Consumes a verdict (or runs the checks inline when null).
  Status check_stateless(const TangleTx& tx,
                         const core::StatelessVerdict* verdict) const;
  /// The mutation half of attach: inserts an already-validated tx.
  void apply_attached(const TangleTx& tx, const TxHash& hash);
  /// Counters + tip_attached trace, exactly as attach() records them.
  void record_attach(const TangleTx& tx, const Status& st);
  bool cone_conflicts(const TxHash& a, const TxHash& b) const;

  TangleParams params_;
  TxHash genesis_hash_;
  std::unordered_map<TxHash, TangleTx> txs_;
  std::unordered_map<TxHash, std::vector<TxHash>> approvers_;  // children
  std::unordered_set<TxHash> tips_;
  // spend_key -> txs carrying it (conflict detection).
  std::unordered_map<Hash256, std::vector<TxHash>> spends_;

  obs::Probe probe_;
  std::uint32_t trace_node_ = 0;
  std::shared_ptr<storage::LedgerStore> store_;
  obs::Counter* obs_attached_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;

  std::shared_ptr<support::ThreadPool> verify_pool_;
  bool parallel_validation_ = false;
  bool parallel_state_ = false;
  mutable obs::ParallelValidationMetrics pv_;
  obs::ParallelStateMetrics ps_;
};

/// Convenience issuer: builds, works and signs a transaction approving
/// the two selected tips. `own_weight` above the tangle's max_own_weight
/// yields a transaction attach() rejects — the spam variant.
TangleTx make_tx(const Tangle& tangle, const crypto::KeyPair& issuer,
                 const TxHash& trunk, const TxHash& branch,
                 const Hash256& payload, double timestamp, Rng& rng,
                 const Hash256& spend_key = {},
                 std::uint64_t own_weight = 1);

}  // namespace dlt::tangle
