// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Every hash in the system -- block ids, transaction ids, Merkle nodes,
// trie nodes, PoW puzzles, account ids -- goes through this implementation,
// exactly as Bitcoin does with SHA-256d (paper §III-A1: "partial hash
// inversion requires that the hash of a block of transactions together with
// a nonce matches a certain pattern").
#pragma once

#include <cstdint>

#include "support/bytes.hpp"

namespace dlt::crypto {

/// Captured intermediate hashing state: the chaining values plus any
/// buffered partial block. Saving the midstate after hashing a common
/// prefix (a PoW payload, a tag preamble) lets many suffixes be hashed
/// without re-processing the prefix -- the same trick Bitcoin miners use
/// for the 80-byte header.
struct Sha256Midstate {
  std::uint32_t h[8];
  Byte buf[64];
  std::size_t buf_len = 0;
  std::uint64_t total_len = 0;
};

class Sha256 {
 public:
  Sha256();

  /// Streaming interface.
  void update(ByteView data);
  Hash256 finalize();

  /// One-shot convenience.
  static Hash256 digest(ByteView data);

  /// Midstate save/restore. `midstate()` snapshots the streaming state
  /// after the updates so far (must not be finalized); `from_midstate()`
  /// resumes from a snapshot, ready for further update()/finalize().
  /// Contexts are also plainly copyable, which is equivalent.
  Sha256Midstate midstate() const;
  static Sha256 from_midstate(const Sha256Midstate& m);

 private:
  void process_block(const Byte* block);

  std::uint32_t h_[8];
  Byte buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// SHA-256(SHA-256(x)) -- Bitcoin's block/tx hash.
Hash256 sha256d(ByteView data);

}  // namespace dlt::crypto
