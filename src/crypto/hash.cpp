#include "crypto/hash.hpp"

#include <string>
#include <unordered_map>

namespace dlt::crypto {
namespace {

// The 64-byte `tag-digest || tag-digest` preamble is exactly one SHA-256
// block, so a context captured after it has empty buffers and costs two
// compressions to build. Tags form a small fixed vocabulary ("dlt/..."),
// so each thread memoizes one midstate per tag and every tagged hash pays
// only the compressions over `data`. thread_local keeps the map safe under
// the batch-verification thread pool without locking.
Sha256 tag_midstate(std::string_view tag) {
  thread_local std::unordered_map<std::string, Sha256Midstate> memo;
  const std::string key(tag);
  auto it = memo.find(key);
  if (it == memo.end()) {
    const Hash256 tag_digest = Sha256::digest(as_bytes(tag));
    Sha256 ctx;
    ctx.update(tag_digest.view());
    ctx.update(tag_digest.view());
    it = memo.emplace(key, ctx.midstate()).first;
  }
  return Sha256::from_midstate(it->second);
}

}  // namespace

Hash256 tagged_hash(std::string_view tag, ByteView data) {
  Sha256 ctx = tag_midstate(tag);
  ctx.update(data);
  return ctx.finalize();
}

Hash256 combine(std::string_view tag, const Hash256& left,
                const Hash256& right) {
  Sha256 ctx = tag_midstate(tag);
  ctx.update(left.view());
  ctx.update(right.view());
  return ctx.finalize();
}

std::uint64_t hash_prefix_u64(const Hash256& h) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | h.v[static_cast<std::size_t>(i)];
  return v;
}

int leading_zero_bits(const Hash256& h) {
  int bits = 0;
  for (Byte b : h.v) {
    if (b == 0) {
      bits += 8;
      continue;
    }
    for (int i = 7; i >= 0; --i) {
      if (b & (1u << i)) return bits;
      ++bits;
    }
  }
  return bits;
}

}  // namespace dlt::crypto
