#include "crypto/hash.hpp"

namespace dlt::crypto {

Hash256 tagged_hash(std::string_view tag, ByteView data) {
  const Hash256 tag_digest = Sha256::digest(as_bytes(tag));
  Sha256 ctx;
  ctx.update(tag_digest.view());
  ctx.update(tag_digest.view());
  ctx.update(data);
  return ctx.finalize();
}

Hash256 combine(std::string_view tag, const Hash256& left,
                const Hash256& right) {
  const Hash256 tag_digest = Sha256::digest(as_bytes(tag));
  Sha256 ctx;
  ctx.update(tag_digest.view());
  ctx.update(tag_digest.view());
  ctx.update(left.view());
  ctx.update(right.view());
  return ctx.finalize();
}

std::uint64_t hash_prefix_u64(const Hash256& h) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | h.v[static_cast<std::size_t>(i)];
  return v;
}

int leading_zero_bits(const Hash256& h) {
  int bits = 0;
  for (Byte b : h.v) {
    if (b == 0) {
      bits += 8;
      continue;
    }
    for (int i = 7; i >= 0; --i) {
      if (b & (1u << i)) return bits;
      ++bits;
    }
  }
  return bits;
}

}  // namespace dlt::crypto
