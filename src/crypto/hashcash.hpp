// Partial hash inversion -- the Proof-of-Work puzzle (paper §III-A1) and
// Nano's per-block anti-spam work (paper §III-B, "similar to Hashcash").
//
// The puzzle: find a nonce such that SHA-256d(payload || nonce) starts with
// at least `difficulty_bits` zero bits. Real solving is implemented and used
// at low difficulty in tests/examples; the network simulation models mining
// races statistically (sim/), which is equivalent in distribution.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hash.hpp"
#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace dlt::crypto {

struct PowSolution {
  std::uint64_t nonce = 0;
  Hash256 digest;       // the winning hash
  std::uint64_t tries = 0;  // attempts taken (for work accounting)
};

/// Hash of payload under a given nonce; the function being inverted.
Hash256 pow_hash(ByteView payload, std::uint64_t nonce);

/// SHA-256 midstate over a fixed payload: the payload is absorbed once at
/// construction, and each candidate hashes only the 8-byte nonce tail plus
/// padding (Bitcoin miners' midstate trick). digest(nonce) is bit-identical
/// to pow_hash(payload, nonce).
class PowMidstate {
 public:
  explicit PowMidstate(ByteView payload);
  Hash256 digest(std::uint64_t nonce) const;

 private:
  Sha256Midstate prefix_;
};

/// True if `digest` meets a difficulty of `bits` leading zero bits.
bool meets_difficulty(const Hash256& digest, int bits);

/// Solves the puzzle by brute force starting from `start_nonce`.
/// Returns nullopt if `max_tries` is exhausted first (0 = unbounded).
std::optional<PowSolution> solve(ByteView payload, int difficulty_bits,
                                 std::uint64_t start_nonce = 0,
                                 std::uint64_t max_tries = 0);

/// Verifies a claimed solution.
bool verify(ByteView payload, std::uint64_t nonce, int difficulty_bits);

/// Expected number of hash attempts to solve at `bits`: 2^bits.
double expected_tries(int bits);

}  // namespace dlt::crypto
