// Binary Merkle tree over transaction hashes (paper §II-A).
//
// "Transactions in Bitcoin and Ethereum are hashed in Merkle Trees."
// Bitcoin commits to the transaction list of a block via the Merkle root in
// the header; light clients verify inclusion with a logarithmic proof.
// Odd levels duplicate the last element (Bitcoin's rule).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace dlt::crypto {

/// One step of an inclusion proof: sibling hash + which side it is on.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_right = false;
};

using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Builds the full tree; leaves are already-hashed items (tx ids).
  explicit MerkleTree(std::vector<Hash256> leaves);

  /// Root of the empty tree is the tagged hash of nothing.
  static Hash256 empty_root();

  const Hash256& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf index i.
  Result<MerkleProof> prove(std::size_t index) const;

  /// Verifies that `leaf` at `index` is committed under `root`.
  static bool verify(const Hash256& root, const Hash256& leaf,
                     std::size_t index, const MerkleProof& proof);

  /// Root-only computation without storing levels (hot path for mining).
  static Hash256 compute_root(std::vector<Hash256> leaves);

 private:
  std::size_t leaf_count_;
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves
};

}  // namespace dlt::crypto
