// Account keys and signatures.
//
// Real DLTs sign with ECDSA (Bitcoin/Ethereum) or ed25519 (Nano). For the
// simulation we implement a structurally real Schnorr signature over the
// multiplicative group of Z_p with toy parameters (p = 2^61 - 1): key
// generation, signing and verification follow the textbook scheme
//   pub y = g^x,  sign: r = g^k, e = H(r || m), s = k + x*e,
//   verify: g^s == r * y^e,
// so the validation code paths (including rejection of forged/tampered
// signatures) are exercised exactly as in the real systems. The parameters
// are NOT cryptographically secure; DESIGN.md documents this substitution --
// none of the paper's comparisons attack the signature scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace dlt::crypto {

/// Account identifier: tagged hash of the public key (as in Ethereum
/// addresses / Nano accounts).
using AccountId = Hash256;

struct Signature {
  std::uint64_t r = 0;  // commitment g^k
  std::uint64_t s = 0;  // response k + x*e
  auto operator<=>(const Signature&) const = default;

  static constexpr std::size_t kSerializedSize = 16;
};

class KeyPair {
 public:
  /// Derives a keypair from an rng (deterministic given the rng state).
  static KeyPair generate(Rng& rng);

  /// Deterministic keypair from a seed; handy for reproducible fixtures.
  static KeyPair from_seed(std::uint64_t seed);

  std::uint64_t public_key() const { return pub_; }
  AccountId account_id() const;

  Signature sign(ByteView message, Rng& rng) const;

 private:
  KeyPair(std::uint64_t priv, std::uint64_t pub) : priv_(priv), pub_(pub) {}
  std::uint64_t priv_;
  std::uint64_t pub_;
};

/// Verifies `sig` over `message` under `public_key`.
bool verify(std::uint64_t public_key, ByteView message, const Signature& sig);

/// Account id of a bare public key. Memoized per thread in a bounded LRU
/// (workers in the parallel-validation pipeline each warm their own), so
/// it is safe to call from any thread; gated on DigestCache::enabled().
AccountId account_of(std::uint64_t public_key);

/// Counters of the calling thread's account_of LRU. Monotonic until
/// account_cache_reset(); never part of the determinism surface.
struct AccountCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  // LRU entries dropped at capacity
};
AccountCacheStats account_cache_stats();
/// Clears the calling thread's account_of LRU and its counters.
void account_cache_reset();
/// Entry bound of each per-thread LRU.
std::size_t account_cache_capacity();

}  // namespace dlt::crypto
