#include "crypto/merkle.hpp"

namespace dlt::crypto {
namespace {
constexpr std::string_view kNodeTag = "dlt/merkle-node";
constexpr std::string_view kEmptyTag = "dlt/merkle-empty";

std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
  std::vector<Hash256> up;
  up.reserve((level.size() + 1) / 2);
  for (std::size_t i = 0; i < level.size(); i += 2) {
    // Bitcoin rule: duplicate the last hash when the level is odd.
    const Hash256& left = level[i];
    const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
    up.push_back(combine(kNodeTag, left, right));
  }
  return up;
}
}  // namespace

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    levels_.push_back({empty_root()});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) levels_.push_back(next_level(levels_.back()));
}

Hash256 MerkleTree::empty_root() {
  return tagged_hash(kEmptyTag, {});
}

Result<MerkleProof> MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_)
    return make_error("out-of-range", "merkle proof index");
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    MerkleStep step;
    // Odd-width level: the last node is paired with itself.
    step.sibling = sibling < nodes.size() ? nodes[sibling] : nodes[i];
    step.sibling_on_right = (i % 2 == 0);
    proof.push_back(step);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& root, const Hash256& leaf,
                        std::size_t index, const MerkleProof& proof) {
  Hash256 acc = leaf;
  std::size_t i = index;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_right ? combine(kNodeTag, acc, step.sibling)
                                : combine(kNodeTag, step.sibling, acc);
    i /= 2;
  }
  (void)i;
  return acc == root;
}

Hash256 MerkleTree::compute_root(std::vector<Hash256> leaves) {
  if (leaves.empty()) return empty_root();
  while (leaves.size() > 1) leaves = next_level(leaves);
  return leaves.front();
}

}  // namespace dlt::crypto
