// Authenticated state trie (Ethereum-style Merkle-Patricia analogue).
//
// Paper §V-A: "Ethereum keeps track of the deltas in the global state
// maintained by a Merkle state tree... if one is not interested in past
// states, the deltas can be discarded without harming chain integrity."
//
// This is a persistent (copy-on-write, structurally shared) compressed
// hex-ary radix trie keyed by 32-byte hashes. Each update returns a new
// trie version that shares all unchanged subtrees with its parent -- an old
// root *is* a state delta: retaining it retains exactly the nodes that
// changed since. The chain layer keeps a window of recent versions for
// soft-fork rollback and prunes older ones (§V-A), and fast-sync walks a
// pivot version's nodes.
//
// Differences from Ethereum's MPT, documented as substitutions in DESIGN.md:
// RLP is replaced by our canonical serializer and the node kinds
// (branch/extension/leaf) are unified into one prefix-compressed node type;
// the authenticated-structure properties (root commits to content, proofs,
// structural sharing) are preserved.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "crypto/hash.hpp"
#include "support/bytes.hpp"

namespace dlt::crypto {

using Nibbles = std::vector<std::uint8_t>;  // values 0..15

Nibbles key_to_nibbles(const Hash256& key);

class Trie {
 public:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    Nibbles prefix;                       // compressed edge above this node
    std::optional<Bytes> value;           // set if a key terminates here
    std::array<NodePtr, 16> children{};   // by next nibble

    // Cached authentication hash; nodes are immutable after construction.
    mutable std::optional<Hash256> cached_hash;

    const Hash256& hash() const;
    std::size_t stored_bytes() const;  // serialized size model of this node
  };

  /// Empty trie.
  Trie() = default;

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_; }

  /// Authentication root; commits to the full key/value content.
  Hash256 root_hash() const;

  std::optional<Bytes> get(const Hash256& key) const;
  bool contains(const Hash256& key) const { return get(key).has_value(); }

  /// Persistent update: returns the new version, *this is unchanged.
  Trie put(const Hash256& key, Bytes value) const;
  Trie erase(const Hash256& key) const;

  /// Visits all (key-nibbles, value) pairs in lexicographic nibble order.
  void for_each(
      const std::function<void(const Nibbles&, const Bytes&)>& fn) const;

  /// Inclusion proof: the hashes of all sibling subtrees along the path,
  /// enough for a verifier holding only root_hash() to check key -> value.
  struct ProofNode {
    Nibbles prefix;
    bool has_value = false;
    Bytes value;  // only for the terminal node
    std::vector<std::pair<std::uint8_t, Hash256>> children;  // nibble->hash
  };
  std::optional<std::vector<ProofNode>> prove(const Hash256& key) const;
  static bool verify_proof(const Hash256& root, const Hash256& key,
                           const Bytes& expected_value,
                           const std::vector<ProofNode>& proof);

  /// Nodes reachable from this version and not yet in `seen`; used to
  /// measure incremental storage of retained versions (state deltas) and to
  /// enumerate the download set for fast-sync. Returns (nodes, bytes) added.
  std::pair<std::size_t, std::size_t> collect_nodes(
      std::unordered_set<const Node*>& seen) const;

  /// Total unique nodes/bytes of this version alone.
  std::pair<std::size_t, std::size_t> measure() const;

 private:
  explicit Trie(NodePtr root, std::size_t size)
      : root_(std::move(root)), size_(size) {}

  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace dlt::crypto
