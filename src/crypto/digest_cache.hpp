// Lazily-computed memoized digest slot.
//
// Transactions, block headers, and lattice blocks are hashed over and over:
// as map keys, merkle leaves, signature payloads, and once per simulated node
// during validation. Since gossip delivers one shared immutable object to all
// N nodes (src/net), memoizing the digest on the object collapses those N
// serialize+hash passes into one.
//
// Contract:
//  - Owners expose invalidate_digests() and call it from every mutator
//    (sign, solve, builders). Code that writes the owner's public fields
//    directly MUST call invalidate_digests() afterwards; a stale digest is
//    a correctness bug, not just a perf bug.
//  - Copies keep the memo: the copied content is byte-identical, so the
//    cached digest still matches.
//  - A cached object must not be hashed concurrently with first computation
//    from another thread; the batch-verification pool only touches digests
//    that were computed (and thus memoized) on the simulation thread.
#pragma once

#include <atomic>

#include "support/bytes.hpp"

namespace dlt::crypto {

class DigestCache {
 public:
  /// Returns the memoized digest, invoking `compute` on the first call (or
  /// on every call while the global switch is off).
  template <typename Fn>
  const Hash256& get(Fn&& compute) const {
    if (!valid_ || !enabled()) {
      digest_ = compute();
      valid_ = enabled();
    }
    return digest_;
  }

  void invalidate() { valid_ = false; }
  bool cached() const { return valid_; }

  /// Global kill switch so benches can A/B the memoization honestly
  /// (bench_hotpath runs the same workload with caching on and off).
  /// Defaults to on; not meant to be toggled mid-simulation.
  static void set_enabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> on{true};
    return on;
  }

  mutable Hash256 digest_;
  mutable bool valid_ = false;
};

}  // namespace dlt::crypto
