// Shared signature-verification cache (Bitcoin Core's sigcache idea).
//
// Schnorr verification is a pure function of (pubkey, sighash, signature):
// the same triple always verifies the same way, no matter which simulated
// node asks. A cluster therefore shares ONE cache across all N nodes -- the
// first node pays the two modular exponentiations, the other N-1 hit the
// cache. Only *successful* verifications are inserted (as in Bitcoin Core),
// so a tampered signature can never be vouched for by the cache: a lookup
// for a bad triple misses and falls through to real verification.
//
// The set is bounded and salted: entries hash through a per-instance salt so
// simulated adversaries cannot engineer collisions, and when full the cache
// resets wholesale (deterministic, unlike random-evict) to stay bounded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "crypto/keys.hpp"
#include "support/bytes.hpp"

namespace dlt::crypto {

/// Monotonic counters; hit_rate() is the headline bench number.
struct SigCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t resets = 0;  // wholesale evictions on overflow

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class SignatureCache {
 public:
  explicit SignatureCache(std::size_t max_entries = 1u << 18,
                          std::uint64_t salt = 0x5ca1ab1e0ddba11ULL);

  /// Lookup with stats accounting (counts a hit or a miss).
  bool contains(std::uint64_t pubkey, const Hash256& sighash,
                const Signature& sig);

  /// Lookup without touching stats; used by batch prefetch so each check
  /// is counted exactly once whether verification runs serially or not.
  bool peek(std::uint64_t pubkey, const Hash256& sighash,
            const Signature& sig) const;

  /// Records a *successful* verification. Never insert failures.
  void insert(std::uint64_t pubkey, const Hash256& sighash,
              const Signature& sig);

  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return max_entries_; }
  const SigCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SigCacheStats{}; }

 private:
  struct Entry {
    std::uint64_t pubkey;
    Hash256 sighash;
    Signature sig;
    bool operator==(const Entry&) const = default;
  };
  struct EntryHash {
    std::uint64_t salt;
    std::size_t operator()(const Entry& e) const;
  };

  std::size_t max_entries_;
  std::unordered_set<Entry, EntryHash> set_;
  SigCacheStats stats_;
};

/// Cache-aware verification: hit -> true without the exponentiations;
/// miss -> real crypto::verify, inserting on success. `cache` may be null
/// (plain verification). Pure drop-in for crypto::verify on 32-byte
/// sighashes, so sharing the cache across nodes is semantics-preserving.
bool verify_cached(SignatureCache* cache, std::uint64_t pubkey,
                   const Hash256& sighash, const Signature& sig);

}  // namespace dlt::crypto
