#include "crypto/hashcash.hpp"

#include <cmath>

#include "support/serialize.hpp"

namespace dlt::crypto {

Hash256 pow_hash(ByteView payload, std::uint64_t nonce) {
  Writer w;
  w.raw(payload);
  w.u64(nonce);
  const Hash256 first = Sha256::digest(ByteView{w.bytes().data(), w.size()});
  return Sha256::digest(first.view());
}

PowMidstate::PowMidstate(ByteView payload) {
  Sha256 ctx;
  ctx.update(payload);
  prefix_ = ctx.midstate();
}

Hash256 PowMidstate::digest(std::uint64_t nonce) const {
  Sha256 ctx = Sha256::from_midstate(prefix_);
  Byte tail[8];  // little-endian, matching Writer::u64
  for (int i = 0; i < 8; ++i) tail[i] = static_cast<Byte>(nonce >> (8 * i));
  ctx.update(ByteView{tail, sizeof(tail)});
  const Hash256 first = ctx.finalize();
  return Sha256::digest(first.view());
}

bool meets_difficulty(const Hash256& digest, int bits) {
  return leading_zero_bits(digest) >= bits;
}

std::optional<PowSolution> solve(ByteView payload, int difficulty_bits,
                                 std::uint64_t start_nonce,
                                 std::uint64_t max_tries) {
  const PowMidstate mid(payload);  // payload absorbed once, not per nonce
  std::uint64_t nonce = start_nonce;
  std::uint64_t tries = 0;
  for (;;) {
    ++tries;
    const Hash256 digest = mid.digest(nonce);
    if (meets_difficulty(digest, difficulty_bits))
      return PowSolution{nonce, digest, tries};
    if (max_tries != 0 && tries >= max_tries) return std::nullopt;
    ++nonce;
  }
}

bool verify(ByteView payload, std::uint64_t nonce, int difficulty_bits) {
  return meets_difficulty(pow_hash(payload, nonce), difficulty_bits);
}

double expected_tries(int bits) {
  return std::ldexp(1.0, bits);
}

}  // namespace dlt::crypto
