#include "crypto/trie.hpp"

#include <algorithm>
#include <cassert>

#include "support/serialize.hpp"

namespace dlt::crypto {
namespace {

constexpr std::string_view kNodeTag = "dlt/trie-node";
constexpr std::string_view kEmptyTag = "dlt/trie-empty";
constexpr std::string_view kValueTag = "dlt/trie-value";

std::size_t common_prefix_len(const Nibbles& a, const Nibbles& b,
                              std::size_t b_from) {
  std::size_t n = 0;
  while (n < a.size() && b_from + n < b.size() && a[n] == b[b_from + n]) ++n;
  return n;
}

Hash256 value_hash(const Bytes& v) {
  return tagged_hash(kValueTag, ByteView{v.data(), v.size()});
}

/// Canonical node-hash preimage: prefix, value commitment, ordered children.
Hash256 hash_node_parts(
    const Nibbles& prefix, const std::optional<Hash256>& vhash,
    const std::vector<std::pair<std::uint8_t, Hash256>>& children) {
  Writer w;
  w.varint(prefix.size());
  for (auto nib : prefix) w.u8(nib);
  if (vhash) {
    w.u8(1);
    w.fixed(*vhash);
  } else {
    w.u8(0);
  }
  w.varint(children.size());
  for (const auto& [nib, h] : children) {
    w.u8(nib);
    w.fixed(h);
  }
  return tagged_hash(kNodeTag, ByteView{w.bytes().data(), w.bytes().size()});
}

}  // namespace

Nibbles key_to_nibbles(const Hash256& key) {
  Nibbles out;
  out.reserve(64);
  for (Byte b : key.v) {
    out.push_back(b >> 4);
    out.push_back(b & 0x0f);
  }
  return out;
}

const Hash256& Trie::Node::hash() const {
  if (!cached_hash) {
    std::vector<std::pair<std::uint8_t, Hash256>> kids;
    for (std::uint8_t i = 0; i < 16; ++i)
      if (children[i]) kids.emplace_back(i, children[i]->hash());
    std::optional<Hash256> vh;
    if (value) vh = value_hash(*value);
    cached_hash = hash_node_parts(prefix, vh, kids);
  }
  return *cached_hash;
}

std::size_t Trie::Node::stored_bytes() const {
  // Storage model: packed prefix nibbles, value bytes, and a 33-byte
  // (index + hash) reference per child, plus a small fixed header.
  std::size_t n = 8 + (prefix.size() + 1) / 2;
  if (value) n += 4 + value->size();
  for (const auto& c : children)
    if (c) n += 33;
  return n;
}

Hash256 Trie::root_hash() const {
  if (!root_) return tagged_hash(kEmptyTag, {});
  return root_->hash();
}

std::optional<Bytes> Trie::get(const Hash256& key) const {
  const Nibbles path = key_to_nibbles(key);
  const Node* node = root_.get();
  std::size_t pos = 0;
  while (node) {
    const std::size_t cp = common_prefix_len(node->prefix, path, pos);
    if (cp != node->prefix.size()) return std::nullopt;
    pos += cp;
    if (pos == path.size()) return node->value;
    const std::uint8_t nib = path[pos];
    node = node->children[nib].get();
    ++pos;
  }
  return std::nullopt;
}

namespace {

using Node = Trie::Node;
using NodePtr = Trie::NodePtr;

NodePtr make_node(Nibbles prefix, std::optional<Bytes> value,
                  std::array<NodePtr, 16> children) {
  auto n = std::make_shared<Node>();
  n->prefix = std::move(prefix);
  n->value = std::move(value);
  n->children = std::move(children);
  return n;
}

NodePtr insert_rec(const NodePtr& node, const Nibbles& path, std::size_t pos,
                   Bytes value, bool& added) {
  if (!node) {
    added = true;
    return make_node(Nibbles(path.begin() + static_cast<std::ptrdiff_t>(pos),
                             path.end()),
                     std::move(value), {});
  }

  const std::size_t cp = common_prefix_len(node->prefix, path, pos);

  if (cp == node->prefix.size()) {
    const std::size_t at = pos + cp;
    if (at == path.size()) {
      // Key terminates exactly at this node: replace/set value.
      added = !node->value.has_value();
      return make_node(node->prefix, std::move(value), node->children);
    }
    // Descend into the child selected by the next nibble.
    const std::uint8_t nib = path[at];
    auto children = node->children;
    children[nib] =
        insert_rec(node->children[nib], path, at + 1, std::move(value), added);
    return make_node(node->prefix, node->value, std::move(children));
  }

  // Prefix mismatch: split this node's edge at cp.
  // The existing node keeps its suffix below a new interior node.
  Nibbles shared(node->prefix.begin(),
                 node->prefix.begin() + static_cast<std::ptrdiff_t>(cp));
  const std::uint8_t old_branch = node->prefix[cp];
  Nibbles old_suffix(node->prefix.begin() + static_cast<std::ptrdiff_t>(cp + 1),
                     node->prefix.end());
  NodePtr moved_old = make_node(std::move(old_suffix), node->value,
                                node->children);

  std::array<NodePtr, 16> children{};
  children[old_branch] = std::move(moved_old);

  added = true;
  const std::size_t at = pos + cp;
  if (at == path.size()) {
    // New key ends at the split point.
    return make_node(std::move(shared), std::move(value), std::move(children));
  }
  const std::uint8_t new_branch = path[at];
  assert(new_branch != old_branch);
  children[new_branch] = make_node(
      Nibbles(path.begin() + static_cast<std::ptrdiff_t>(at + 1), path.end()),
      std::move(value), {});
  return make_node(std::move(shared), std::nullopt, std::move(children));
}

/// Post-delete cleanup: drop empty nodes, merge single-child pass-throughs.
NodePtr normalize(const NodePtr& node) {
  if (!node) return nullptr;
  int child_count = 0;
  int only = -1;
  for (int i = 0; i < 16; ++i) {
    if (node->children[static_cast<std::size_t>(i)]) {
      ++child_count;
      only = i;
    }
  }
  if (node->value) return node;
  if (child_count == 0) return nullptr;
  if (child_count == 1) {
    const NodePtr& child = node->children[static_cast<std::size_t>(only)];
    Nibbles merged = node->prefix;
    merged.push_back(static_cast<std::uint8_t>(only));
    merged.insert(merged.end(), child->prefix.begin(), child->prefix.end());
    return make_node(std::move(merged), child->value, child->children);
  }
  return node;
}

NodePtr erase_rec(const NodePtr& node, const Nibbles& path, std::size_t pos,
                  bool& removed) {
  if (!node) return nullptr;
  const std::size_t cp = common_prefix_len(node->prefix, path, pos);
  if (cp != node->prefix.size()) return node;  // key absent
  const std::size_t at = pos + cp;
  if (at == path.size()) {
    if (!node->value) return node;  // key absent
    removed = true;
    return normalize(make_node(node->prefix, std::nullopt, node->children));
  }
  const std::uint8_t nib = path[at];
  const NodePtr& child = node->children[nib];
  if (!child) return node;
  NodePtr new_child = erase_rec(child, path, at + 1, removed);
  if (!removed) return node;
  auto children = node->children;
  children[nib] = std::move(new_child);
  return normalize(make_node(node->prefix, node->value, std::move(children)));
}

void for_each_rec(
    const NodePtr& node, Nibbles& acc,
    const std::function<void(const Nibbles&, const Bytes&)>& fn) {
  if (!node) return;
  const std::size_t base = acc.size();
  acc.insert(acc.end(), node->prefix.begin(), node->prefix.end());
  if (node->value) fn(acc, *node->value);
  for (std::uint8_t i = 0; i < 16; ++i) {
    if (!node->children[i]) continue;
    acc.push_back(i);
    for_each_rec(node->children[i], acc, fn);
    acc.pop_back();
  }
  acc.resize(base);
}

void collect_rec(const NodePtr& node,
                 std::unordered_set<const Node*>& seen, std::size_t& nodes,
                 std::size_t& bytes) {
  if (!node) return;
  if (!seen.insert(node.get()).second) return;  // shared subtree, stop
  ++nodes;
  bytes += node->stored_bytes();
  for (const auto& c : node->children) collect_rec(c, seen, nodes, bytes);
}

}  // namespace

Trie Trie::put(const Hash256& key, Bytes value) const {
  const Nibbles path = key_to_nibbles(key);
  bool added = false;
  NodePtr new_root = insert_rec(root_, path, 0, std::move(value), added);
  return Trie(std::move(new_root), size_ + (added ? 1 : 0));
}

Trie Trie::erase(const Hash256& key) const {
  const Nibbles path = key_to_nibbles(key);
  bool removed = false;
  NodePtr new_root = erase_rec(root_, path, 0, removed);
  return Trie(std::move(new_root), size_ - (removed ? 1 : 0));
}

void Trie::for_each(
    const std::function<void(const Nibbles&, const Bytes&)>& fn) const {
  Nibbles acc;
  for_each_rec(root_, acc, fn);
}

std::optional<std::vector<Trie::ProofNode>> Trie::prove(
    const Hash256& key) const {
  const Nibbles path = key_to_nibbles(key);
  std::vector<ProofNode> proof;
  const Node* node = root_.get();
  std::size_t pos = 0;
  while (node) {
    const std::size_t cp = common_prefix_len(node->prefix, path, pos);
    if (cp != node->prefix.size()) return std::nullopt;
    pos += cp;
    ProofNode pn;
    pn.prefix = node->prefix;
    const bool terminal = (pos == path.size());
    for (std::uint8_t i = 0; i < 16; ++i) {
      if (!node->children[i]) continue;
      // The followed child's hash is recomputed by the verifier, so it is
      // omitted; every other child hash ships in the proof.
      if (!terminal && i == path[pos]) continue;
      pn.children.emplace_back(i, node->children[i]->hash());
    }
    if (terminal) {
      if (!node->value) return std::nullopt;
      pn.has_value = true;
      pn.value = *node->value;
      proof.push_back(std::move(pn));
      return proof;
    }
    if (node->value) {
      pn.has_value = true;
      pn.value = *node->value;
    }
    proof.push_back(std::move(pn));
    node = node->children[path[pos]].get();
    ++pos;
  }
  return std::nullopt;
}

bool Trie::verify_proof(const Hash256& root, const Hash256& key,
                        const Bytes& expected_value,
                        const std::vector<ProofNode>& proof) {
  if (proof.empty()) return false;
  const Nibbles path = key_to_nibbles(key);

  // Offsets of each proof node's prefix start within the key path.
  std::vector<std::size_t> offset(proof.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < proof.size(); ++i) {
    offset[i] = pos;
    const Nibbles& pre = proof[i].prefix;
    if (pos + pre.size() > path.size()) return false;
    if (!std::equal(pre.begin(), pre.end(),
                    path.begin() + static_cast<std::ptrdiff_t>(pos)))
      return false;
    pos += pre.size();
    if (i + 1 < proof.size()) ++pos;  // branch nibble into the next node
  }
  if (pos != path.size()) return false;

  const ProofNode& term = proof.back();
  if (!term.has_value || term.value != expected_value) return false;

  // Recompute hashes from the terminal node upward.
  auto node_hash = [](const ProofNode& pn,
                      std::optional<std::pair<std::uint8_t, Hash256>> extra) {
    std::vector<std::pair<std::uint8_t, Hash256>> kids = pn.children;
    if (extra) kids.push_back(*extra);
    std::sort(kids.begin(), kids.end());
    std::optional<Hash256> vh;
    if (pn.has_value)
      vh = tagged_hash(kValueTag, ByteView{pn.value.data(), pn.value.size()});
    return hash_node_parts(pn.prefix, vh, kids);
  };

  Hash256 acc = node_hash(term, std::nullopt);
  for (std::size_t i = proof.size() - 1; i-- > 0;) {
    const std::uint8_t branch = path[offset[i] + proof[i].prefix.size()];
    acc = node_hash(proof[i], std::make_pair(branch, acc));
  }
  return acc == root;
}

std::pair<std::size_t, std::size_t> Trie::collect_nodes(
    std::unordered_set<const Node*>& seen) const {
  std::size_t nodes = 0, bytes = 0;
  collect_rec(root_, seen, nodes, bytes);
  return {nodes, bytes};
}

std::pair<std::size_t, std::size_t> Trie::measure() const {
  std::unordered_set<const Node*> seen;
  return collect_nodes(seen);
}

}  // namespace dlt::crypto
