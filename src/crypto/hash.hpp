// Hashing helpers on top of SHA-256: domain separation and combining.
//
// Every distinct object kind (account id, trie node, merkle interior, vote,
// ...) is hashed under its own ASCII tag, so hashes from different domains
// can never collide structurally.
#pragma once

#include <string_view>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace dlt::crypto {

/// H(tag-digest || tag-digest || data) -- BIP-340 style tagged hash.
Hash256 tagged_hash(std::string_view tag, ByteView data);

/// H(tag || left || right) -- interior node combiner.
Hash256 combine(std::string_view tag, const Hash256& left,
                const Hash256& right);

/// Interprets the first 8 bytes of a digest as a big-endian integer.
/// Used to compare hashes against PoW targets.
std::uint64_t hash_prefix_u64(const Hash256& h);

/// Number of leading zero bits in the digest.
int leading_zero_bits(const Hash256& h);

}  // namespace dlt::crypto
