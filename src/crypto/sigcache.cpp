#include "crypto/sigcache.hpp"

namespace dlt::crypto {
namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit avalanche.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t SignatureCache::EntryHash::operator()(const Entry& e) const {
  std::uint64_t h = mix(salt ^ e.pubkey);
  for (std::size_t i = 0; i < 32; i += 8) {
    std::uint64_t chunk = 0;
    for (std::size_t j = 0; j < 8; ++j)
      chunk = (chunk << 8) | e.sighash.v[i + j];
    h = mix(h ^ chunk);
  }
  h = mix(h ^ e.sig.r);
  h = mix(h ^ e.sig.s);
  return static_cast<std::size_t>(h);
}

SignatureCache::SignatureCache(std::size_t max_entries, std::uint64_t salt)
    : max_entries_(max_entries > 0 ? max_entries : 1),
      set_(16, EntryHash{salt}) {}

bool SignatureCache::contains(std::uint64_t pubkey, const Hash256& sighash,
                              const Signature& sig) {
  const bool found = peek(pubkey, sighash, sig);
  if (found)
    ++stats_.hits;
  else
    ++stats_.misses;
  return found;
}

bool SignatureCache::peek(std::uint64_t pubkey, const Hash256& sighash,
                          const Signature& sig) const {
  return set_.find(Entry{pubkey, sighash, sig}) != set_.end();
}

void SignatureCache::insert(std::uint64_t pubkey, const Hash256& sighash,
                            const Signature& sig) {
  if (set_.size() >= max_entries_) {
    set_.clear();  // wholesale reset: bounded and deterministic
    ++stats_.resets;
  }
  set_.insert(Entry{pubkey, sighash, sig});
  ++stats_.insertions;
}

bool verify_cached(SignatureCache* cache, std::uint64_t pubkey,
                   const Hash256& sighash, const Signature& sig) {
  if (cache != nullptr && cache->contains(pubkey, sighash, sig)) return true;
  const bool ok = verify(pubkey, sighash.view(), sig);
  if (ok && cache != nullptr) cache->insert(pubkey, sighash, sig);
  return ok;
}

}  // namespace dlt::crypto
