#include "crypto/keys.hpp"

#include <list>
#include <unordered_map>
#include <utility>

#include "crypto/digest_cache.hpp"
#include "support/serialize.hpp"

namespace dlt::crypto {
namespace {

// Toy Schnorr group: Z_p^* with p = 2^61 - 1 (Mersenne prime).
// Exponents live modulo the group order p - 1. g = 3 generates a large
// subgroup. These parameters are simulation-grade only (see header).
constexpr std::uint64_t kP = (1ULL << 61) - 1;
constexpr std::uint64_t kOrder = kP - 1;
constexpr std::uint64_t kG = 3;

// 128-bit intermediates for modular multiplication. GCC/Clang extension;
// guarded so -Wpedantic stays clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using uint128 = unsigned __int128;
#pragma GCC diagnostic pop

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(static_cast<uint128>(a) * b % kP);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t acc = 1;
  base %= kP;
  while (exp > 0) {
    if (exp & 1) acc = mul_mod(acc, base);
    base = mul_mod(base, base);
    exp >>= 1;
  }
  return acc;
}

/// Challenge e = H("schnorr-e" || r || message) reduced into the exponent
/// group.
std::uint64_t challenge(std::uint64_t r, ByteView message) {
  Writer w;
  w.u64(r);
  w.raw(message);
  const Hash256 h =
      tagged_hash("dlt/schnorr-e", ByteView{w.bytes().data(), w.size()});
  return hash_prefix_u64(h) % kOrder;
}

std::uint64_t add_mod_order(std::uint64_t a, std::uint64_t b) {
  // a, b < kOrder < 2^61, so the sum cannot overflow 64 bits.
  const std::uint64_t s = a + b;
  return s >= kOrder ? s - kOrder : s;
}

}  // namespace

KeyPair KeyPair::generate(Rng& rng) {
  // Private key in [1, order).
  const std::uint64_t priv = 1 + rng.uniform(kOrder - 1);
  return KeyPair(priv, pow_mod(kG, priv));
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  Rng rng(seed ^ 0x5167e7u);
  return generate(rng);
}

AccountId KeyPair::account_id() const {
  return account_of(pub_);
}

Signature KeyPair::sign(ByteView message, Rng& rng) const {
  const std::uint64_t k = 1 + rng.uniform(kOrder - 1);
  const std::uint64_t r = pow_mod(kG, k);
  const std::uint64_t e = challenge(r, message);
  const std::uint64_t xe =
      static_cast<std::uint64_t>(static_cast<uint128>(priv_) * e % kOrder);
  return Signature{r, add_mod_order(k, xe)};
}

bool verify(std::uint64_t public_key, ByteView message, const Signature& sig) {
  if (public_key == 0 || public_key >= kP) return false;
  if (sig.r == 0 || sig.r >= kP) return false;
  const std::uint64_t e = challenge(sig.r, message);
  // g^s == r * y^e  (all in Z_p^*).
  const std::uint64_t lhs = pow_mod(kG, sig.s % kOrder);
  const std::uint64_t rhs = mul_mod(sig.r, pow_mod(public_key, e));
  return lhs == rhs;
}

namespace {

AccountId derive_account(std::uint64_t public_key) {
  Writer w;
  w.u64(public_key);
  return tagged_hash("dlt/account-id", ByteView{w.bytes().data(), w.size()});
}

constexpr std::size_t kAccountCacheCapacity = 1u << 16;

// Per-thread LRU over pubkey -> account id. A wholesale clear at the bound
// (the previous scheme) made every entry re-derive right after the reset;
// evicting only the least-recently-used key keeps the hot working set warm
// even when the live key population exceeds the capacity.
struct AccountCache {
  std::list<std::pair<std::uint64_t, AccountId>> order;  // front = hottest
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, AccountId>>::iterator>
      index;
  AccountCacheStats stats;
};

AccountCache& account_cache() {
  thread_local AccountCache cache;
  return cache;
}

}  // namespace

AccountId account_of(std::uint64_t public_key) {
  // UTXO ownership checks re-derive the payer's account id per input per
  // validating node; the derivation is pure, so memoize it. Shares the
  // DigestCache kill switch so bench A/B runs stay honest.
  if (!DigestCache::enabled()) return derive_account(public_key);
  AccountCache& c = account_cache();
  auto it = c.index.find(public_key);
  if (it != c.index.end()) {
    ++c.stats.hits;
    c.order.splice(c.order.begin(), c.order, it->second);
    return it->second->second;
  }
  ++c.stats.misses;
  if (c.index.size() >= kAccountCacheCapacity) {
    ++c.stats.evictions;
    c.index.erase(c.order.back().first);
    c.order.pop_back();
  }
  c.order.emplace_front(public_key, derive_account(public_key));
  c.index.emplace(public_key, c.order.begin());
  return c.order.front().second;
}

AccountCacheStats account_cache_stats() { return account_cache().stats; }

void account_cache_reset() {
  AccountCache& c = account_cache();
  c.order.clear();
  c.index.clear();
  c.stats = AccountCacheStats{};
}

std::size_t account_cache_capacity() { return kAccountCacheCapacity; }

}  // namespace dlt::crypto
