#include "net/msg_type.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace dlt::net {
namespace {

struct TransparentHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct TransparentEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct Registry {
  std::mutex mu;
  // deque: name references stay valid as the registry grows.
  std::deque<std::string> names;
  std::unordered_map<std::string, MsgType, TransparentHash, TransparentEq> ids;
};

Registry& registry() {
  static Registry r;  // magic static: safe under concurrent first use
  return r;
}

}  // namespace

MsgType msg_type(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.ids.find(name);
  if (it != r.ids.end()) return it->second;
  const MsgType id = static_cast<MsgType>(r.names.size());
  r.names.emplace_back(name);
  r.ids.emplace(r.names.back(), id);
  return id;
}

const std::string& msg_type_name(MsgType id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  assert(id < r.names.size() && "unknown MsgType");
  return r.names[id];
}

std::size_t msg_type_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.names.size();
}

}  // namespace dlt::net
