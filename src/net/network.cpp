#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace dlt::net {
namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

NodeId Network::add_node() {
  nodes_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_handler(NodeId node,
                          std::function<void(const Message&)> handler) {
  assert(node < nodes_.size());
  nodes_[node].handler = std::move(handler);
}

void Network::connect(NodeId a, NodeId b, LinkParams params) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  if (connected(a, b)) return;
  links_[link_key(a, b)] = Link{params, 0.0};
  links_[link_key(b, a)] = Link{params, 0.0};
  nodes_[a].neighbors.push_back(b);
  nodes_[b].neighbors.push_back(a);
}

bool Network::connected(NodeId a, NodeId b) const {
  return links_.count(link_key(a, b)) != 0;
}

const std::vector<NodeId>& Network::neighbors(NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].neighbors;
}

bool Network::partitioned(NodeId a, NodeId b) const {
  return nodes_[a].partition_group != nodes_[b].partition_group;
}

Network::Link* Network::find_link(NodeId from, NodeId to) {
  auto it = links_.find(link_key(from, to));
  return it == links_.end() ? nullptr : &it->second;
}

void Network::set_probe(obs::Probe probe) {
  probe_ = probe;
  obs_messages_ = probe_.counter("net.messages");
  obs_bytes_ = probe_.counter("net.bytes");
  obs_dropped_ = probe_.counter("net.dropped");
  obs_dedup_evictions_ = probe_.counter("net.gossip.dedup_evictions");
}

void Network::set_gossip_dedup_window(std::size_t window) {
  gossip_window_ = std::max<std::size_t>(window, 2);
}

std::size_t Network::gossip_dedup_entries(NodeId node) const {
  assert(node < nodes_.size());
  const GossipDedup& d = nodes_[node].seen_gossip;
  return d.cur.size() + d.prev.size();
}

TrafficStats& Network::traffic_slot(MsgType type) {
  if (type >= by_type_.size()) by_type_.resize(type + 1);
  return by_type_[type];
}

std::map<std::string, TrafficStats> Network::traffic_by_type() const {
  std::map<std::string, TrafficStats> out;
  for (MsgType id = 0; id < by_type_.size(); ++id) {
    const TrafficStats& t = by_type_[id];
    if (t.messages == 0 && t.bytes == 0) continue;
    out.emplace(msg_type_name(id), t);
  }
  return out;
}

std::uint64_t Network::trace_kind(MsgType type) {
  if (type >= trace_kinds_.size()) trace_kinds_.resize(type + 1, kNoKind);
  std::uint64_t& kind = trace_kinds_[type];
  if (kind == kNoKind) {
    kind = next_trace_kind_++;
    if (probe_.metrics)
      probe_.metrics->gauge("net.kind." + msg_type_name(type))
          .set(static_cast<double>(kind));
  }
  return kind;
}

void Network::send(NodeId from, NodeId to, Message msg) {
  assert(msg.type != kNoMsgType && "message type not set");
  Link* link = find_link(from, to);
  if (link == nullptr || partitioned(from, to)) return;
  if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
    obs::inc(obs_dropped_);
    return;
  }

  msg.from = from;

  // Serialization delay: the link transmits one message at a time.
  const double now = sim_.now();
  const double start = std::max(now, link->busy_until);
  const double tx_time =
      static_cast<double>(msg.bytes) / std::max(link->params.bandwidth, 1.0);
  link->busy_until = start + tx_time;

  double prop = link->params.latency;
  if (link->params.jitter > 0.0)
    prop = std::max(0.0, rng_.normal(prop, link->params.jitter));

  const double arrive = start + tx_time + prop;

  total_traffic_.messages += 1;
  total_traffic_.bytes += msg.bytes;
  TrafficStats& t = traffic_slot(msg.type);
  t.messages += 1;
  t.bytes += msg.bytes;

  obs::inc(obs_messages_);
  obs::inc(obs_bytes_, msg.bytes);
  if (probe_.tracer && probe_.tracer->enabled()) {
    probe_.tracer->record(now, obs::EventType::kMessageSent, from,
                          trace_kind(msg.type), msg.bytes);
  }

  sim_.schedule_at(arrive, [this, to, msg = std::move(msg), now] {
    delivery_delay_.add(sim_.now() - now);
    deliver(msg.from, to, msg);
  });
}

bool Network::note_gossip(NodeState& node, std::uint64_t id) {
  GossipDedup& d = node.seen_gossip;
  if (d.prev.count(id) != 0) return false;
  if (!d.cur.insert(id).second) return false;
  if (d.cur.size() >= gossip_window_ / 2) {
    dedup_evictions_ += d.prev.size();
    obs::inc(obs_dedup_evictions_, d.prev.size());
    d.prev = std::move(d.cur);
    d.cur.clear();
  }
  return true;
}

void Network::deliver(NodeId /*from*/, NodeId to, const Message& msg) {
  assert(to < nodes_.size());
  NodeState& node = nodes_[to];
  if (msg.gossip_id != 0) {
    if (!note_gossip(node, msg.gossip_id)) return;  // duplicate
    relay_gossip(to, msg);
  }
  if (node.handler) node.handler(msg);
}

void Network::relay_gossip(NodeId at, const Message& msg) {
  for (NodeId peer : nodes_[at].neighbors) {
    if (peer == msg.from) continue;
    Message copy = msg;
    send(at, peer, std::move(copy));
  }
}

std::uint64_t Network::gossip(NodeId origin, Message msg) {
  assert(origin < nodes_.size());
  msg.gossip_id = next_gossip_id_++;
  note_gossip(nodes_[origin], msg.gossip_id);
  msg.from = origin;
  relay_gossip(origin, msg);
  return msg.gossip_id;
}

void Network::set_partitions(const std::vector<std::vector<NodeId>>& groups) {
  for (auto& n : nodes_) n.partition_group = 0;
  int g = 1;
  for (const auto& group : groups) {
    for (NodeId id : group) {
      assert(id < nodes_.size());
      nodes_[id].partition_group = g;
    }
    ++g;
  }
}

void build_complete(Network& net, const std::vector<NodeId>& nodes,
                    LinkParams params) {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      net.connect(nodes[i], nodes[j], params);
}

void build_ring(Network& net, const std::vector<NodeId>& nodes,
                LinkParams params) {
  if (nodes.size() < 2) return;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    net.connect(nodes[i], nodes[(i + 1) % nodes.size()], params);
}

void build_random(Network& net, const std::vector<NodeId>& nodes,
                  std::size_t degree, Rng& rng, LinkParams params) {
  if (nodes.size() < 2) return;
  // Ring first so the graph is always connected, then random extra edges.
  build_ring(net, nodes, params);
  for (NodeId a : nodes) {
    for (std::size_t d = 0; d < degree; ++d) {
      const NodeId b = nodes[rng.uniform(nodes.size())];
      if (a != b && !net.connected(a, b)) net.connect(a, b, params);
    }
  }
}

void build_small_world(Network& net, const std::vector<NodeId>& nodes,
                       std::size_t k, double beta, Rng& rng,
                       LinkParams params) {
  const std::size_t n = nodes.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      NodeId target = nodes[(i + j) % n];
      if (rng.chance(beta)) {
        // Rewire to a uniform random non-self, non-duplicate peer.
        for (int tries = 0; tries < 16; ++tries) {
          const NodeId cand = nodes[rng.uniform(n)];
          if (cand != nodes[i] && !net.connected(nodes[i], cand)) {
            target = cand;
            break;
          }
        }
      }
      if (target != nodes[i] && !net.connected(nodes[i], target))
        net.connect(nodes[i], target, params);
    }
  }
}

}  // namespace dlt::net
