// PayloadRef: single-allocation type-erased immutable payload handle.
//
// Messages used to carry shared_ptr<const std::any>: two allocations per
// payload (control block + any's heap box for anything bigger than a
// pointer) and three indirections per access. PayloadRef folds refcount,
// type tag, and value into one heap block; copying a Message during gossip
// relay is a single atomic increment. Type safety is preserved with an
// RTTI-free per-type tag, checked by assert in debug builds (the sanitizer
// legs of tools/check.sh run with asserts on).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

namespace dlt::net {

namespace detail {

/// One static byte per distinct T; its address is the type's identity.
template <typename T>
inline const void* type_tag() {
  static const char tag = 0;
  return &tag;
}

}  // namespace detail

class PayloadRef {
 public:
  PayloadRef() = default;

  template <typename T>
  static PayloadRef make(T value) {
    PayloadRef p;
    p.ctrl_ = new Typed<T>(std::move(value));
    return p;
  }

  PayloadRef(const PayloadRef& other) : ctrl_(other.ctrl_) {
    if (ctrl_) ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& other) noexcept
      : ctrl_(std::exchange(other.ctrl_, nullptr)) {}

  PayloadRef& operator=(PayloadRef other) noexcept {
    std::swap(ctrl_, other.ctrl_);
    return *this;
  }

  ~PayloadRef() { release(); }

  explicit operator bool() const { return ctrl_ != nullptr; }

  /// Typed access; T must match the type passed to make().
  template <typename T>
  const T& as() const {
    assert(ctrl_ && "empty payload");
    assert(ctrl_->type == detail::type_tag<T>() && "payload type mismatch");
    return static_cast<const Typed<T>*>(ctrl_)->value;
  }

 private:
  struct Ctrl {
    std::atomic<std::uint32_t> refs{1};
    void (*destroy)(Ctrl*) = nullptr;
    const void* type = nullptr;
  };
  template <typename T>
  struct Typed : Ctrl {
    explicit Typed(T v) : value(std::move(v)) {
      this->destroy = [](Ctrl* c) { delete static_cast<Typed*>(c); };
      this->type = detail::type_tag<T>();
    }
    const T value;
  };

  void release() {
    if (ctrl_ && ctrl_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ctrl_->destroy(ctrl_);
    ctrl_ = nullptr;
  }

  Ctrl* ctrl_ = nullptr;
};

}  // namespace dlt::net
