// Simulated peer-to-peer overlay network.
//
// Nodes exchange opaque messages over links with configurable latency,
// jitter and bandwidth; gossip floods with per-node deduplication. Network
// delay is the root cause of the paper's Fig. 4 soft forks ("due to network
// delays, some nodes will receive one block over the other") and of the
// real-world throughput ceilings §VI attributes to "network conditions".
//
// Hot-path representation: message types are interned MsgType ids
// (net/msg_type.hpp) and payloads are single-allocation PayloadRef handles
// (net/payload.hpp), so send/relay/deliver copies a Message with one atomic
// increment and no string or std::any traffic. Strings survive only at the
// reporting edge (traffic_by_type(), net.kind.* gauges).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/msg_type.hpp"
#include "net/payload.hpp"
#include "obs/probe.hpp"
#include "sim/simulation.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace dlt::net {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = ~0u;
constexpr MsgType kNoMsgType = ~0u;

/// A delivered message. `payload` carries an arbitrary protocol object
/// (shared, immutable); `bytes` is its modelled wire size, which drives
/// bandwidth queueing and traffic accounting.
struct Message {
  NodeId from = kNoNode;
  MsgType type = kNoMsgType;
  PayloadRef payload;
  std::size_t bytes = 0;
  std::uint64_t gossip_id = 0;  // nonzero when part of a gossip flood
};

/// Per-link delay model.
struct LinkParams {
  double latency = 0.05;        // seconds, one-way base propagation delay
  double jitter = 0.0;          // stddev of gaussian jitter, seconds
  double bandwidth = 1.25e6;    // bytes/second (default ~10 Mbit/s)
};

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  Network(sim::Simulation& simulation, Rng rng)
      : sim_(simulation), rng_(std::move(rng)) {}

  /// Adds a node; the handler is invoked on each delivered message.
  NodeId add_node();
  void set_handler(NodeId node, std::function<void(const Message&)> handler);

  std::size_t node_count() const { return nodes_.size(); }

  /// Creates a bidirectional link (both directions share parameters).
  void connect(NodeId a, NodeId b, LinkParams params = {});
  bool connected(NodeId a, NodeId b) const;
  const std::vector<NodeId>& neighbors(NodeId node) const;

  /// Point-to-point send; silently dropped if no link or partitioned.
  void send(NodeId from, NodeId to, Message msg);

  /// Gossip flood: delivers to every reachable node exactly once (including
  /// relay hops and their delays). Returns the flood id.
  std::uint64_t gossip(NodeId origin, Message msg);

  /// Partition management: nodes in different groups cannot communicate.
  /// An empty group list heals all partitions.
  void set_partitions(const std::vector<std::vector<NodeId>>& groups);
  void heal() { set_partitions({}); }

  /// Drop probability applied to every delivery (message loss).
  void set_loss_rate(double p) { loss_rate_ = p; }

  /// Caps per-node gossip dedup memory at ~`window` flood ids (two exact
  /// half-windows rotated deterministically; a duplicate is always detected
  /// while fewer than window/2 newer floods have been recorded at that
  /// node). Evictions are counted in net.gossip.dedup_evictions.
  void set_gossip_dedup_window(std::size_t window);
  /// Flood ids currently remembered by `node` (test/diagnostic accessor).
  std::size_t gossip_dedup_entries(NodeId node) const;
  std::uint64_t gossip_dedup_evictions() const { return dedup_evictions_; }

  const TrafficStats& traffic() const { return total_traffic_; }
  /// Per-type traffic, rendered name-keyed for reports. Built on demand
  /// from the flat per-id table — call once and keep the result, not in a
  /// loop.
  std::map<std::string, TrafficStats> traffic_by_type() const;
  Summary& delivery_delay() { return delivery_delay_; }

  /// Attaches the observability probe: net.messages / net.bytes /
  /// net.dropped counters plus a message_sent trace event per send. The
  /// trace's `kind` field is an interned id assigned in first-send order
  /// (deterministic under the sim); `net.kind.<type>` gauges record the
  /// mapping in the registry.
  void set_probe(obs::Probe probe);

  sim::Simulation& simulation() { return sim_; }
  Rng& rng() { return rng_; }

 private:
  struct Link {
    LinkParams params;
    double busy_until = 0.0;  // serialization queue per direction
  };
  // Two-generation exact dedup window: inserts go to `cur`; when `cur`
  // reaches half the window the older generation is dropped. Rotation
  // order depends only on the insertion sequence, so it is deterministic.
  struct GossipDedup {
    std::unordered_set<std::uint64_t> cur;
    std::unordered_set<std::uint64_t> prev;
  };
  struct NodeState {
    std::function<void(const Message&)> handler;
    std::vector<NodeId> neighbors;
    GossipDedup seen_gossip;
    int partition_group = 0;
  };

  bool partitioned(NodeId a, NodeId b) const;
  Link* find_link(NodeId from, NodeId to);
  void deliver(NodeId from, NodeId to, const Message& msg);
  void relay_gossip(NodeId at, const Message& msg);
  /// Records `id` at `node`; returns false if it was already known.
  bool note_gossip(NodeState& node, std::uint64_t id);
  TrafficStats& traffic_slot(MsgType type);
  std::uint64_t trace_kind(MsgType type);

  sim::Simulation& sim_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  // Directed link state keyed by (from, to).
  std::unordered_map<std::uint64_t, Link> links_;
  std::uint64_t next_gossip_id_ = 1;
  double loss_rate_ = 0.0;
  std::size_t gossip_window_ = 1u << 20;
  std::uint64_t dedup_evictions_ = 0;

  TrafficStats total_traffic_;
  std::vector<TrafficStats> by_type_;  // indexed by MsgType id
  Summary delivery_delay_;

  obs::Probe probe_;
  obs::Counter* obs_messages_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_dedup_evictions_ = nullptr;
  // message_sent `kind` per MsgType, assigned in first-send order so trace
  // bytes are independent of global MsgType registration order.
  static constexpr std::uint64_t kNoKind = ~0ull;
  std::vector<std::uint64_t> trace_kinds_;
  std::uint64_t next_trace_kind_ = 0;
};

/// Topology builders (return the network for chaining-free use).
void build_complete(Network& net, const std::vector<NodeId>& nodes,
                    LinkParams params = {});
void build_ring(Network& net, const std::vector<NodeId>& nodes,
                LinkParams params = {});
/// Each node links to `degree` uniformly random distinct peers.
void build_random(Network& net, const std::vector<NodeId>& nodes,
                  std::size_t degree, Rng& rng, LinkParams params = {});
/// Watts-Strogatz small world: ring with k nearest neighbours, rewired
/// with probability beta.
void build_small_world(Network& net, const std::vector<NodeId>& nodes,
                       std::size_t k, double beta, Rng& rng,
                       LinkParams params = {});

/// Convenience for constructing a typed message (hot overload: the type is
/// already interned, typically a namespace-scope constant).
template <typename T>
Message make_message(MsgType type, T payload, std::size_t bytes) {
  Message m;
  m.type = type;
  m.payload = PayloadRef::make<T>(std::move(payload));
  m.bytes = bytes;
  return m;
}

/// Convenience overload that interns the type name first (tests, one-off
/// sends; not for per-message hot paths).
template <typename T>
Message make_message(std::string_view type, T payload, std::size_t bytes) {
  return make_message(msg_type(type), std::move(payload), bytes);
}
template <typename T>
Message make_message(const char* type, T payload, std::size_t bytes) {
  return make_message(msg_type(type), std::move(payload), bytes);
}

/// Extracts a typed payload (asserts on type mismatch in debug builds).
template <typename T>
const T& payload_as(const Message& msg) {
  return msg.payload.as<T>();
}

}  // namespace dlt::net
