// Interned message-type ids.
//
// Message types used to be std::string fields compared and hashed on every
// send/deliver/traffic-account. Types are a tiny closed set per experiment
// (block, tx, vote, ...), so they are interned once into dense uint32 ids
// at registration; the hot path then compares and indexes integers, and the
// string name is looked up only when rendering reports/JSON.
//
// Determinism: ids are assigned in registration order. Every node layer
// registers its types via namespace-scope `const MsgType k... =
// msg_type("...")` initializers, so the id assignment order is frozen by
// static-initialization order within each translation unit — and the ids
// themselves never appear in traces or registry JSON (the per-network
// first-send interning in net::Network covers those surfaces).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dlt::net {

/// Dense interned id for a message type. Value-comparable, hashable, cheap
/// to copy; use msg_type() to obtain one and msg_type_name() to render it.
using MsgType = std::uint32_t;

/// Interns `name`, returning its id (stable for the process lifetime).
/// Repeated calls with the same name return the same id. Thread-safe.
MsgType msg_type(std::string_view name);

/// The name `id` was registered with. Asserts on unknown ids.
const std::string& msg_type_name(MsgType id);

/// Number of distinct types registered so far (ids are 0..count-1).
std::size_t msg_type_count();

}  // namespace dlt::net
