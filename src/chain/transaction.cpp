#include "chain/transaction.hpp"

#include "crypto/hash.hpp"

namespace dlt::chain {
namespace {

void write_core(Writer& w, const UtxoTransaction& tx, bool with_sigs) {
  w.varint(tx.inputs.size());
  for (const TxIn& in : tx.inputs) {
    w.fixed(in.prevout.txid);
    w.u32(in.prevout.index);
    // The pubkey travels outside the sighash (like Bitcoin's scriptSig);
    // it is authenticated by the owner check + signature verification.
    if (with_sigs) {
      w.u64(in.pubkey);
      w.u64(in.signature.r);
      w.u64(in.signature.s);
    }
  }
  w.varint(tx.outputs.size());
  for (const TxOut& out : tx.outputs) {
    w.u64(out.value);
    w.fixed(out.owner);
  }
  w.u32(tx.lock_height);
}

}  // namespace

Bytes UtxoTransaction::serialize() const {
  Writer w;
  write_core(w, *this, /*with_sigs=*/true);
  return std::move(w).take();
}

std::size_t UtxoTransaction::serialized_size() const {
  // inputs: 32 txid + 4 index + 8 pubkey + 16 sig; outputs: 8 + 32.
  return varint_size(inputs.size()) + inputs.size() * 60 +
         varint_size(outputs.size()) + outputs.size() * 40 + 4;
}

TxId UtxoTransaction::id() const {
  return id_memo_.get([this] {
    const Bytes raw = serialize();
    return crypto::sha256d(ByteView{raw.data(), raw.size()});
  });
}

Hash256 UtxoTransaction::sighash() const {
  return sighash_memo_.get([this] {
    Writer w;
    write_core(w, *this, /*with_sigs=*/false);
    return crypto::tagged_hash("dlt/utxo-sighash",
                               ByteView{w.bytes().data(), w.size()});
  });
}

void UtxoTransaction::sign_all(const std::vector<crypto::KeyPair>& keys,
                               Rng& rng) {
  const Hash256 digest = sighash();  // memoized; signatures are outside it
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const crypto::KeyPair& kp = keys[i < keys.size() ? i : keys.size() - 1];
    inputs[i].pubkey = kp.public_key();
    inputs[i].signature = kp.sign(digest.view(), rng);
  }
  id_memo_.invalidate();  // the id covers the signatures just written
}

UtxoTransaction UtxoTransaction::coinbase(const crypto::AccountId& to,
                                          Amount reward,
                                          std::uint32_t height) {
  UtxoTransaction tx;
  tx.outputs.push_back(TxOut{reward, to});
  tx.lock_height = height;  // differentiates coinbases across heights
  return tx;
}

Amount UtxoTransaction::total_output() const {
  Amount sum = 0;
  for (const TxOut& out : outputs) sum += out.value;
  return sum;
}

}  // namespace dlt::chain
