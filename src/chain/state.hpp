// Account-model world state over the authenticated trie (Ethereum,
// paper §II-A and §V-A).
//
// Each block maps to a trie version (its state root). Because the trie is
// persistent, "keeping the deltas" is simply retaining old versions, and
// §V-A pruning is dropping them. A reorg rolls back by re-pointing at the
// fork-point version.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "chain/account_tx.hpp"
#include "chain/params.hpp"
#include "chain/validation.hpp"
#include "crypto/trie.hpp"
#include "support/result.hpp"

namespace dlt::chain {

struct AccountState {
  Amount balance = 0;
  std::uint64_t nonce = 0;
  std::uint32_t code_size = 0;  // contract bytecode bytes (modelled)

  Bytes encode() const;
  static Result<AccountState> decode(ByteView raw);
};

/// One immutable world-state version (wraps one trie version).
class WorldState {
 public:
  WorldState() = default;

  Hash256 root() const { return trie_.root_hash(); }
  std::size_t account_count() const { return trie_.size(); }

  std::optional<AccountState> get(const crypto::AccountId& id) const;
  Amount balance_of(const crypto::AccountId& id) const;

  WorldState with_account(const crypto::AccountId& id,
                          const AccountState& st) const;

  /// Validates and executes a transaction: signature, nonce, balance
  /// covering value + max fee. Returns the post state; fees are credited
  /// to `fee_recipient` and unused gas refunded to the sender. A shared
  /// crypto::SignatureCache skips repeat signature verifications. When
  /// `verdict` carries a pre-computed slot (parallel pipeline) the
  /// signature check reads it instead of re-verifying.
  Result<WorldState> apply_transaction(
      const AccountTransaction& tx, const crypto::AccountId& fee_recipient,
      const GasSchedule& gs = {}, crypto::SignatureCache* sigcache = nullptr,
      const TxVerdict* verdict = nullptr) const;

  /// Credits `amount` (block reward).
  WorldState credit(const crypto::AccountId& id, Amount amount) const;

  Amount total_supply() const;

  const crypto::Trie& trie() const { return trie_; }

 private:
  explicit WorldState(crypto::Trie t) : trie_(std::move(t)) {}
  crypto::Trie trie_;
};

/// Version store: state root -> WorldState. The chain layer registers each
/// block's post-state here; pruning erases versions older than a window
/// (§V-A "the deltas can be discarded without harming the chain integrity").
class StateDB {
 public:
  void put(const Hash256& root, WorldState state);
  std::optional<WorldState> get(const Hash256& root) const;
  bool contains(const Hash256& root) const { return versions_.count(root); }
  std::size_t version_count() const { return versions_.size(); }

  /// Drops every version except those in `keep`. Returns versions erased.
  std::size_t prune_except(const std::vector<Hash256>& keep);

  /// Unique trie nodes/bytes across all retained versions (structural
  /// sharing means this is the real on-disk footprint, i.e. the "deltas").
  std::pair<std::size_t, std::size_t> measure() const;

 private:
  std::unordered_map<Hash256, WorldState> versions_;
};

}  // namespace dlt::chain
