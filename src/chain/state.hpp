// Account-model world state over the authenticated trie (Ethereum,
// paper §II-A and §V-A).
//
// Each block maps to a trie version (its state root). Because the trie is
// persistent, "keeping the deltas" is simply retaining old versions, and
// §V-A pruning is dropping them. A reorg rolls back by re-pointing at the
// fork-point version.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "chain/account_tx.hpp"
#include "chain/params.hpp"
#include "chain/validation.hpp"
#include "crypto/trie.hpp"
#include "support/result.hpp"

namespace dlt::chain {

struct AccountState {
  Amount balance = 0;
  std::uint64_t nonce = 0;
  std::uint32_t code_size = 0;  // contract bytecode bytes (modelled)

  Bytes encode() const;
  static Result<AccountState> decode(ByteView raw);
};

/// The single definition of account-transaction validity, parameterized
/// over the account view so the serial path (WorldState::apply_transaction,
/// lookup = this state) and the sharded stateful pipeline (lookup = frozen
/// state + group overlay) cannot diverge: same checks, same error codes,
/// in the same order. `lookup(id)` returns std::optional<AccountState>.
/// Returns the fee charged on success.
template <typename Lookup>
Result<Amount> check_account_transaction(const Lookup& lookup,
                                         const AccountTransaction& tx,
                                         const GasSchedule& gs,
                                         crypto::SignatureCache* sigcache,
                                         const TxVerdict* verdict) {
  // Verdict slot, when present, is exactly verify_signature() pre-computed:
  // signer-matches-from plus signature-over-sighash.
  const InputVerdict* iv =
      verdict && !verdict->inputs.empty() ? &verdict->inputs[0] : nullptr;
  const bool sig_ok = iv ? (iv->signer == tx.from && iv->sig_ok)
                         : tx.verify_signature(sigcache);
  if (!sig_ok) return make_error("bad-signature");

  const std::optional<AccountState> sender = lookup(tx.from);
  if (!sender) return make_error("unknown-sender", "no such account");
  if (sender->nonce != tx.nonce)
    return make_error("bad-nonce", "expected nonce mismatch");

  const std::uint64_t gas = tx.gas_used(gs);
  if (gas > tx.gas_limit)
    return make_error("out-of-gas", "intrinsic gas exceeds limit");
  const Amount max_cost = tx.value + tx.max_fee();
  if (sender->balance < max_cost)
    return make_error("insufficient-balance");

  return static_cast<Amount>(gas * tx.gas_price);  // unused gas is refunded
}

/// One immutable world-state version (wraps one trie version).
class WorldState {
 public:
  WorldState() = default;

  Hash256 root() const { return trie_.root_hash(); }
  std::size_t account_count() const { return trie_.size(); }

  std::optional<AccountState> get(const crypto::AccountId& id) const;
  Amount balance_of(const crypto::AccountId& id) const;

  WorldState with_account(const crypto::AccountId& id,
                          const AccountState& st) const;

  /// Validates and executes a transaction: signature, nonce, balance
  /// covering value + max fee. Returns the post state; fees are credited
  /// to `fee_recipient` and unused gas refunded to the sender. A shared
  /// crypto::SignatureCache skips repeat signature verifications. When
  /// `verdict` carries a pre-computed slot (parallel pipeline) the
  /// signature check reads it instead of re-verifying.
  Result<WorldState> apply_transaction(
      const AccountTransaction& tx, const crypto::AccountId& fee_recipient,
      const GasSchedule& gs = {}, crypto::SignatureCache* sigcache = nullptr,
      const TxVerdict* verdict = nullptr) const;

  /// Credits `amount` (block reward).
  WorldState credit(const crypto::AccountId& id, Amount amount) const;

  Amount total_supply() const;

  const crypto::Trie& trie() const { return trie_; }

 private:
  explicit WorldState(crypto::Trie t) : trie_(std::move(t)) {}
  crypto::Trie trie_;
};

/// Version store: state root -> WorldState. The chain layer registers each
/// block's post-state here; pruning erases versions older than a window
/// (§V-A "the deltas can be discarded without harming the chain integrity").
class StateDB {
 public:
  void put(const Hash256& root, WorldState state);
  std::optional<WorldState> get(const Hash256& root) const;
  bool contains(const Hash256& root) const { return versions_.count(root); }
  std::size_t version_count() const { return versions_.size(); }

  /// Drops every version except those in `keep`. Returns versions erased.
  std::size_t prune_except(const std::vector<Hash256>& keep);

  /// Unique trie nodes/bytes across all retained versions (structural
  /// sharing means this is the real on-disk footprint, i.e. the "deltas").
  std::pair<std::size_t, std::size_t> measure() const;

 private:
  std::unordered_map<Hash256, WorldState> versions_;
};

}  // namespace dlt::chain
