#include "chain/block.hpp"

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::chain {

Bytes BlockHeader::pow_payload() const {
  Writer w;
  w.u32(height);
  w.fixed(parent);
  w.fixed(merkle_root);
  w.fixed(state_root);
  w.u64(static_cast<std::uint64_t>(timestamp * 1e6));  // microsecond grid
  w.u64(static_cast<std::uint64_t>(difficulty));
  w.fixed(proposer);
  w.u64(slot);
  return std::move(w).take();
}

Bytes BlockHeader::serialize() const {
  Writer w;
  w.raw(ByteView{pow_payload()});
  w.u64(nonce);
  return std::move(w).take();
}

BlockHash BlockHeader::hash() const {
  return hash_memo_.get([this] {
    const Bytes raw = serialize();
    return crypto::tagged_hash("dlt/block-header",
                               ByteView{raw.data(), raw.size()});
  });
}

Hash256 BlockHeader::pow_digest() const {
  if (!crypto::DigestCache::enabled()) {
    const Bytes payload = pow_payload();
    return crypto::pow_hash(ByteView{payload.data(), payload.size()}, nonce);
  }
  if (!pow_memo_) {
    const Bytes payload = pow_payload();
    pow_memo_.emplace(ByteView{payload.data(), payload.size()});
  }
  return pow_memo_->digest(nonce);
}

bool meets_target(const Hash256& digest, double difficulty) {
  if (difficulty <= 1.0) return true;
  // target = 2^64 / difficulty; success prob per try = 1/difficulty.
  const double target = 18446744073709551616.0 /* 2^64 */ / difficulty;
  return static_cast<double>(crypto::hash_prefix_u64(digest)) < target;
}

std::size_t Block::tx_count() const {
  return std::visit([](const auto& list) { return list.size(); }, txs);
}

std::vector<Hash256> Block::tx_ids() const {
  std::vector<Hash256> ids;
  std::visit(
      [&ids](const auto& list) {
        ids.reserve(list.size());
        for (const auto& tx : list) ids.push_back(tx.id());
      },
      txs);
  return ids;
}

Hash256 Block::compute_merkle_root() const {
  return crypto::MerkleTree::compute_root(tx_ids());
}

std::size_t Block::serialized_size() const {
  std::size_t n = header.serialized_size();
  std::visit(
      [&n](const auto& list) {
        for (const auto& tx : list) n += tx.serialized_size();
      },
      txs);
  return n;
}

std::uint64_t Block::total_gas() const {
  if (is_utxo()) return 0;
  std::uint64_t gas = 0;
  for (const auto& tx : account_txs()) gas += tx.gas_used();
  return gas;
}

}  // namespace dlt::chain
