// Lossless storage codecs for chain blocks (ISSUE 9).
//
// These are deliberately distinct from the canonical hash encodings:
// BlockHeader::serialize() quantizes the timestamp to microseconds and
// truncates the difficulty to a u64 — fine for hashing (every node hashes
// the same truncation), fatal for storage (a replayed block must carry the
// exact doubles so revalidation and fork choice reproduce bit-identical
// results). Storage frames therefore bit-cast the doubles.
//
// Record payloads (block log):
//   kHeader — u32 height | parent | merkle | state_root | u64 ts_bits |
//             u64 diff_bits | u64 nonce | proposer | u64 slot
//   kBody   — u8 model (0 = UTXO, 1 = account) | varint count | txs,
//             each in its canonical wire order with signatures.
#pragma once

#include "chain/block.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"

namespace dlt::chain {

Bytes encode_header_record(const BlockHeader& header);
Result<BlockHeader> decode_header_record(ByteView raw);

Bytes encode_body_record(const Block& block);
/// Fills `block.txs` (the header is untouched — pair with the kHeader
/// record under the same hash key).
Status decode_body_record(ByteView raw, Block& block);

/// Reassembles a full block from its two log records.
Result<Block> decode_block_records(ByteView header_raw, ByteView body_raw);

}  // namespace dlt::chain
