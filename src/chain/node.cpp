#include "chain/node.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/hashcash.hpp"
#include "obs/latency.hpp"
#include "obs/profile.hpp"
#include "support/log.hpp"

namespace dlt::chain {
namespace {

// Interned once at static init; per-message paths compare/copy uint32 ids.
const net::MsgType kMsgBlock = net::msg_type("block");
const net::MsgType kMsgUtxoTx = net::msg_type("tx-utxo");
const net::MsgType kMsgAccountTx = net::msg_type("tx-acct");
const net::MsgType kMsgVote = net::msg_type("ffg-vote");
const net::MsgType kMsgGetBlock = net::msg_type("get-block");
constexpr std::size_t kGetBlockBytes = 40;  // request: type tag + hash

}  // namespace

ChainNode::ChainNode(net::Network& network, const ChainParams& params,
                     const GenesisSpec& genesis, const NodeConfig& config,
                     Rng rng, const std::vector<StakeAllocation>& stakes)
    : net_(network),
      id_(network.add_node()),
      params_(params),
      chain_(params, genesis),
      wallet_(crypto::KeyPair::from_seed(config.wallet_seed)),
      config_(config),
      rng_(std::move(rng)) {
  for (const StakeAllocation& s : stakes)
    validators_.deposit(s.validator, s.pubkey, s.stake);
  if (params_.consensus == ConsensusKind::kProofOfStake) {
    finality_ = std::make_unique<FinalityGadget>(
        params_, validators_, chain_.at_height(0)->hash());
  }

  chain_.set_sigcache(config_.sigcache);
  chain_.set_verify_pool(config_.verify_pool);
  chain_.set_parallel_validation(config_.parallel_validation);
  chain_.set_parallel_state(config_.parallel_state);
  chain_.set_metrics(config_.probe.metrics);
  if (config_.store) chain_.attach_store(config_.store);

  utxo_pool_.set_capacity(config_.mempool_capacity_bytes);
  utxo_pool_.set_replace_by_fee(config_.mempool_replacement);
  account_pool_.set_capacity(config_.mempool_capacity_bytes);
  account_pool_.set_replacement(config_.mempool_replacement);

  if (config_.probe) {
    obs_blocks_mined_ = config_.probe.counter("chain.blocks_mined");
    obs_blocks_received_ = config_.probe.counter("chain.blocks_received");
    obs_blocks_rejected_ = config_.probe.counter("chain.blocks_rejected");
    obs_forks_opened_ = config_.probe.counter("chain.forks_opened");
    obs_reorgs_ = config_.probe.counter("chain.reorgs");
    obs_votes_cast_ = config_.probe.counter("chain.votes_cast");
    obs_justified_ = config_.probe.counter("chain.checkpoints_justified");
    obs_finalized_ = config_.probe.counter("chain.checkpoints_finalized");
    if (config_.solve_pow)
      profile_pow_ = config_.probe.histogram("profile.pow_solve_us");
  }

  chain_.on_connect([this](const Block& b) { on_block_connected(b); });
  chain_.on_disconnect([this](const Block& b) { on_block_disconnected(b); });
  if (config_.probe) {
    chain_.on_reorg([this](std::uint32_t depth, std::uint32_t new_height) {
      obs::inc(obs_reorgs_);
      config_.probe.trace(net_.simulation().now(),
                          obs::EventType::kReorgApplied, id_, depth,
                          new_height);
    });
    chain_.on_side_chain([this](const Block& b) {
      obs::inc(obs_forks_opened_);
      config_.probe.trace(net_.simulation().now(), obs::EventType::kForkOpened,
                          id_, b.header.height, obs::trace_id(b.hash()));
    });
  }

  net_.set_handler(id_, [this](const net::Message& m) { handle_message(m); });
}

void ChainNode::start() {
  if (params_.consensus == ConsensusKind::kProofOfWork) {
    if (config_.hashrate > 0.0) schedule_mining();
  } else {
    schedule_slot();
  }
}

Status ChainNode::submit_transaction(const UtxoTransaction& tx) {
  Status st = utxo_pool_.add(tx, chain_.utxo_set(), chain_.height(),
                             config_.sigcache.get());
  if (!st.ok()) return st;
  submit_time_[tx.id()] = net_.simulation().now();
  net_.gossip(id_, net::make_message(kMsgUtxoTx, tx, tx.serialized_size()));
  return Status::success();
}

Status ChainNode::submit_transaction(const AccountTransaction& tx) {
  Status st = account_pool_.add(tx, chain_.world_state(),
                                config_.sigcache.get());
  if (!st.ok()) return st;
  submit_time_[tx.id()] = net_.simulation().now();
  net_.gossip(id_,
              net::make_message(kMsgAccountTx, tx, tx.serialized_size()));
  return Status::success();
}

std::size_t ChainNode::mempool_size() const {
  return params_.tx_model == TxModel::kUtxo ? utxo_pool_.size()
                                            : account_pool_.size();
}

void ChainNode::handle_message(const net::Message& msg) {
  if (msg.type == kMsgBlock) {
    accept_block(net::payload_as<Block>(msg), msg.from);
  } else if (msg.type == kMsgGetBlock) {
    serve_block(msg.from, net::payload_as<BlockHash>(msg));
  } else if (msg.type == kMsgUtxoTx) {
    (void)utxo_pool_.add(net::payload_as<UtxoTransaction>(msg),
                         chain_.utxo_set(), chain_.height(),
                         config_.sigcache.get());
  } else if (msg.type == kMsgAccountTx) {
    (void)account_pool_.add(net::payload_as<AccountTransaction>(msg),
                            chain_.world_state(), config_.sigcache.get());
  } else if (msg.type == kMsgVote) {
    handle_vote(net::payload_as<CheckpointVote>(msg));
  }
}

void ChainNode::accept_block(const Block& block, net::NodeId from) {
  if (params_.consensus == ConsensusKind::kProofOfStake)
    detect_proposer_equivocation(block);

  const BlockHash old_tip = chain_.tip_hash();
  auto res = chain_.submit(block);
  if (!res) {
    obs::inc(obs_blocks_rejected_);
    DLT_LOG_DEBUG("node %u rejected block: %s", id_,
                  res.error().to_string().c_str());
    return;
  }
  if (res->outcome != Accept::kDuplicate) {
    obs::inc(obs_blocks_received_);
    config_.probe.trace(net_.simulation().now(), obs::EventType::kBlockReceived,
                        id_, block.header.height, obs::trace_id(block.hash()));
  }
  // Orphan: the parent is missing locally -- backfill it from whoever
  // sent us this block (simplified headers-first sync).
  if (res->outcome == Accept::kOrphaned && from != net::kNoNode)
    request_block(from, block.header.parent);
  // A tip change restarts the mining race on the new parent (the
  // exponential clock is memoryless, so resampling is distribution-exact).
  if (chain_.tip_hash() != old_tip &&
      params_.consensus == ConsensusKind::kProofOfWork &&
      config_.hashrate > 0.0) {
    schedule_mining();
  }
}

void ChainNode::request_block(net::NodeId peer, const BlockHash& hash) {
  net_.send(id_, peer, net::make_message(kMsgGetBlock, hash, kGetBlockBytes));
}

void ChainNode::serve_block(net::NodeId peer, const BlockHash& hash) {
  const Block* block = chain_.find(hash);
  if (!block || chain_.body_pruned(hash)) return;  // unknown or pruned (§V-A)
  net_.send(id_, peer,
            net::make_message(kMsgBlock, *block,
                              block->serialized_size() +
                                  params_.simulated_extra_block_bytes));
}

// ---------------------------------------------------------------------------
// PoW mining

void ChainNode::schedule_mining() {
  if (mining_event_ != sim::kInvalidEvent)
    net_.simulation().cancel(mining_event_);
  const double difficulty = chain_.next_difficulty(chain_.tip_hash());
  const double mean_solve = difficulty / config_.hashrate;
  const double delay = rng_.exponential(mean_solve);
  mining_event_ = net_.simulation().schedule_in(delay, [this] {
    mining_event_ = sim::kInvalidEvent;
    mine_block();
  });
}

void ChainNode::mine_block() {
  Block block = assemble_block(net_.simulation().now(), /*slot=*/0);

  if (config_.solve_pow) {
    // Real partial hash inversion against the fractional target.
    obs::ProfileTimer timer(profile_pow_);
    std::uint64_t nonce = rng_.next();
    for (;; ++nonce) {
      block.header.nonce = nonce;
      if (meets_target(block.header.pow_digest(), block.header.difficulty))
        break;
    }
  } else {
    block.header.nonce = rng_.next();
  }

  ++blocks_mined_;
  auto res = chain_.submit(block);
  if (!res) {
    DLT_LOG_WARN("node %u mined invalid block: %s", id_,
                 res.error().to_string().c_str());
  } else {
    obs::inc(obs_blocks_mined_);
    config_.probe.trace(net_.simulation().now(), obs::EventType::kBlockMined,
                        id_, block.header.height, block.tx_count());
    net_.gossip(id_,
                net::make_message(kMsgBlock, block,
                                  block.serialized_size() +
                                      params_.simulated_extra_block_bytes));
  }
  schedule_mining();
}

Block ChainNode::assemble_block(double timestamp, std::uint64_t slot) {
  Block block;
  block.header.height = chain_.height() + 1;
  block.header.parent = chain_.tip_hash();
  block.header.timestamp =
      std::max(timestamp, chain_.find(chain_.tip_hash())->header.timestamp);
  block.header.difficulty = chain_.next_difficulty(chain_.tip_hash());
  block.header.proposer = wallet_.account_id();
  block.header.slot = slot;

  if (params_.tx_model == TxModel::kUtxo) {
    const std::uint64_t budget =
        params_.max_block_bytes > 0
            ? params_.max_block_bytes - block.header.serialized_size() - 60
            : 0;
    UtxoTxList txs = utxo_pool_.select(budget);
    Amount fees = 0;
    for (const auto& tx : txs) {
      auto fee = chain_.utxo_set().check_transaction(tx, block.header.height,
                                                     config_.sigcache.get());
      if (fee) fees += *fee;
    }
    txs.insert(txs.begin(),
               UtxoTransaction::coinbase(wallet_.account_id(),
                                         params_.block_reward + fees,
                                         block.header.height));
    block.txs = std::move(txs);
  } else {
    AccountTxList txs =
        account_pool_.select(params_.block_gas_limit, chain_.world_state());
    auto root = chain_.compute_state_root(txs, wallet_.account_id());
    if (!root) {
      // A stale mempool entry slipped in; rebuild with none (rare).
      txs.clear();
      root = chain_.compute_state_root(txs, wallet_.account_id());
      assert(root);
    }
    block.header.state_root = *root;
    block.txs = std::move(txs);
  }
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

// ---------------------------------------------------------------------------
// PoS

void ChainNode::schedule_slot() {
  const double now = net_.simulation().now();
  const auto current_slot =
      static_cast<std::uint64_t>(now / params_.block_interval);
  const double next_time =
      static_cast<double>(current_slot + 1) * params_.block_interval;
  net_.simulation().schedule_at(next_time, [this, current_slot] {
    run_slot(current_slot + 1);
    schedule_slot();
  });
}

void ChainNode::run_slot(std::uint64_t slot) {
  const Hash256 seed = chain_.at_height(0)->hash();
  auto proposer = validators_.proposer_for_slot(seed, slot);
  if (!proposer) return;
  if (*proposer == wallet_.account_id()) {
    Block block = assemble_block(net_.simulation().now(), slot);
    ++blocks_mined_;
    auto res = chain_.submit(block);
    if (res) {
      obs::inc(obs_blocks_mined_);
      config_.probe.trace(net_.simulation().now(), obs::EventType::kBlockMined,
                          id_, block.header.height, block.tx_count());
      net_.gossip(id_,
                  net::make_message(kMsgBlock, block,
                                    block.serialized_size() +
                                        params_.simulated_extra_block_bytes));
    }
  }
  maybe_vote_checkpoint();
}

void ChainNode::maybe_vote_checkpoint() {
  if (!finality_) return;
  if (validators_.stake_of(wallet_.account_id()) == 0) return;

  const std::uint64_t epoch = chain_.height() / params_.epoch_length;
  if (epoch == 0 || epoch <= last_voted_epoch_) return;

  const std::uint32_t checkpoint_height =
      static_cast<std::uint32_t>(epoch * params_.epoch_length);
  const Block* target = chain_.at_height(checkpoint_height);
  if (!target) return;

  CheckpointVote vote;
  vote.source_epoch = finality_->last_justified_epoch();
  vote.source_hash = finality_->last_justified_hash();
  vote.target_epoch = epoch;
  vote.target_hash = target->hash();
  vote.sign(wallet_, rng_);
  last_voted_epoch_ = epoch;

  obs::inc(obs_votes_cast_);
  config_.probe.trace(net_.simulation().now(), obs::EventType::kVoteCast, id_,
                      epoch, obs::trace_id(vote.target_hash));

  handle_vote(vote);  // count own vote locally
  net_.gossip(id_, net::make_message(kMsgVote, vote,
                                     CheckpointVote::kSerializedSize));
}

void ChainNode::handle_vote(const CheckpointVote& vote) {
  if (!finality_) return;
  auto outcome = finality_->process_vote(vote);
  if (!outcome) return;
  if (outcome->justified_target) {
    obs::inc(obs_justified_);
    config_.probe.trace(net_.simulation().now(),
                        obs::EventType::kQuorumReached, id_, vote.target_epoch,
                        obs::trace_id(vote.target_hash));
  }
  if (outcome->finalized_source) {
    obs::inc(obs_finalized_);
    // Non-reversible checkpoint (paper §IV-A): lock fork choice below it.
    (void)chain_.finalize(finality_->last_finalized_hash());
  }
}

void ChainNode::detect_proposer_equivocation(const Block& block) {
  if (block.header.slot == 0) return;
  auto [it, inserted] =
      seen_slot_blocks_.emplace(block.header.slot, block.hash());
  if (!inserted && it->second != block.hash()) {
    const Amount burned = validators_.slash(block.header.proposer);
    if (burned > 0)
      DLT_LOG_INFO("node %u slashed equivocating proposer (%llu stake)", id_,
                   static_cast<unsigned long long>(burned));
  }
}

// ---------------------------------------------------------------------------
// Chain event hooks

void ChainNode::on_block_connected(const Block& block) {
  const double now = net_.simulation().now();

  if (block.is_utxo())
    utxo_pool_.remove_included(block.utxo_txs());
  else
    account_pool_.remove_included(block.account_txs());

  // Inclusion latency for our own transactions. Engine-tracked
  // transactions stamp through the lifecycle tracker (which emits the
  // same tx_included event); directly-submitted ones (tests, attack
  // harnesses) keep the historical emission.
  auto record_inclusion = [&](const Hash256& id) {
    auto it = submit_time_.find(id);
    if (it == submit_time_.end()) return;
    if (!include_time_.count(id)) {
      include_time_[id] = now;
      timings_.inclusion_latency.add(now - it->second);
      const std::uint64_t id64 = obs::trace_id(id);
      if (!config_.lifecycle ||
          !config_.lifecycle->on_include(id64, now, id_,
                                         block.header.height))
        config_.probe.trace(now, obs::EventType::kTxIncluded, id_, id64,
                            block.header.height);
    }
  };
  if (block.is_utxo())
    for (const auto& tx : block.utxo_txs()) record_inclusion(tx.id());
  else
    for (const auto& tx : block.account_txs()) record_inclusion(tx.id());

  // Confirmation latency: the block that just became `confirmation_depth`
  // deep is now confirmed (paper §IV-A's depth rule).
  if (chain_.height() + 1 >= params_.confirmation_depth) {
    const std::uint32_t confirmed_h =
        chain_.height() + 1 - params_.confirmation_depth;
    const Block* confirmed = chain_.at_height(confirmed_h);
    if (confirmed) {
      auto record_confirm = [&](const Hash256& id) {
        auto it = submit_time_.find(id);
        if (it == submit_time_.end()) return;
        timings_.confirmation_latency.add(now - it->second);
        submit_time_.erase(it);
        include_time_.erase(id);
        const std::uint64_t id64 = obs::trace_id(id);
        if (!config_.lifecycle ||
            !config_.lifecycle->on_confirm(id64, now, id_, confirmed_h))
          config_.probe.trace(now, obs::EventType::kTxConfirmed, id_, id64,
                              confirmed_h);
      };
      if (confirmed->is_utxo())
        for (const auto& tx : confirmed->utxo_txs()) record_confirm(tx.id());
      else
        for (const auto& tx : confirmed->account_txs())
          record_confirm(tx.id());
    }
  }
}

void ChainNode::on_block_disconnected(const Block& block) {
  // Orphaned transactions return to the mempool to be re-included
  // (paper §IV-A).
  if (block.is_utxo())
    utxo_pool_.reinject(block.utxo_txs(), chain_.utxo_set(), chain_.height(),
                        config_.sigcache.get());
  else
    account_pool_.reinject(block.account_txs(), chain_.world_state(),
                           config_.sigcache.get());

  // Their inclusion no longer stands.
  auto unrecord = [&](const Hash256& id) {
    if (include_time_.erase(id) && config_.lifecycle)
      config_.lifecycle->on_uninclude(obs::trace_id(id));
  };
  if (block.is_utxo())
    for (const auto& tx : block.utxo_txs()) unrecord(tx.id());
  else
    for (const auto& tx : block.account_txs()) unrecord(tx.id());
}

}  // namespace dlt::chain
