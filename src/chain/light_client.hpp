// SPV light client (paper §II-A).
//
// The reason blocks commit to their transactions through a Merkle root
// (Fig. 1) is that a client holding only the ~164-byte headers can verify
// (a) that the header chain is internally consistent and carries the
// claimed proof of work, and (b) that a given transaction is included in
// a given block, using a logarithmic Merkle proof served by a full node.
// This is the header-only counterpart of §V's storage discussion: a light
// client stores O(height) bytes instead of the full ledger.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/blockchain.hpp"
#include "crypto/merkle.hpp"
#include "support/result.hpp"

namespace dlt::chain {

/// What a full node serves to prove a transaction to a light client.
struct InclusionProof {
  TxId txid;
  std::uint32_t height = 0;       // block the tx is claimed to be in
  std::size_t index = 0;          // position within the block
  crypto::MerkleProof merkle;     // path to the header's merkle_root
};

class LightClient {
 public:
  explicit LightClient(ChainParams params) : params_(std::move(params)) {}

  /// Accepts the trusted genesis header (hard-coded, like the state).
  Status set_genesis(const BlockHeader& genesis);

  /// Appends one header after full SPV validation: parent link, height,
  /// difficulty schedule (against the observed header chain) and proof of
  /// work. Headers forming side chains are rejected -- this minimal
  /// client follows a single best chain as served by its peer.
  Status accept_header(const BlockHeader& header);

  std::uint32_t height() const {
    return static_cast<std::uint32_t>(headers_.size() - 1);
  }
  const BlockHeader& tip() const { return headers_.back(); }
  const BlockHeader* header_at(std::uint32_t h) const;
  std::uint64_t stored_bytes() const {
    return headers_.size() * BlockHeader::kSerializedSize;
  }

  /// SPV verification: the proof must connect `txid` to the Merkle root
  /// of the header at the claimed height. Returns the number of
  /// confirmations the transaction has from this client's viewpoint.
  Result<std::uint32_t> verify_inclusion(const InclusionProof& proof) const;

  /// Expected difficulty of the next header (mirrors full-node logic but
  /// computed purely from headers).
  double next_difficulty() const;

 private:
  ChainParams params_;
  std::vector<BlockHeader> headers_;
};

/// Full-node side: builds an inclusion proof for a transaction on the
/// active chain (fails if its block body was pruned, §V-A's trade-off).
Result<InclusionProof> make_inclusion_proof(const Blockchain& chain,
                                            const TxId& txid);

}  // namespace dlt::chain
