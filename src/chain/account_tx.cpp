#include "chain/account_tx.hpp"

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::chain {
namespace {

void write_core(Writer& w, const AccountTransaction& tx, bool with_sig) {
  w.fixed(tx.from);
  w.fixed(tx.to);
  w.u64(tx.nonce);
  w.u64(tx.value);
  w.u64(tx.gas_limit);
  w.u64(tx.gas_price);
  w.u32(tx.data_size);
  if (with_sig) {
    w.u64(tx.pubkey);
    w.u64(tx.signature.r);
    w.u64(tx.signature.s);
  }
}

}  // namespace

std::uint64_t AccountTransaction::intrinsic_gas(const GasSchedule& gs) const {
  std::uint64_t gas = gs.tx_base;
  gas += static_cast<std::uint64_t>(data_size) * gs.per_data_byte;
  if (is_contract_creation()) gas += gs.contract_creation;
  return gas;
}

Bytes AccountTransaction::serialize() const {
  Writer w;
  write_core(w, *this, /*with_sig=*/true);
  return std::move(w).take();
}

std::size_t AccountTransaction::serialized_size() const {
  // 32 from + 32 to + 8*4 fields + 4 data_size + 8 pubkey + 16 sig + data.
  return 32 + 32 + 32 + 4 + 8 + 16 + data_size;
}

Hash256 AccountTransaction::id() const {
  return id_memo_.get([this] {
    const Bytes raw = serialize();
    return crypto::tagged_hash("dlt/account-tx",
                               ByteView{raw.data(), raw.size()});
  });
}

Hash256 AccountTransaction::sighash() const {
  return sighash_memo_.get([this] {
    Writer w;
    write_core(w, *this, /*with_sig=*/false);
    return crypto::tagged_hash("dlt/account-sighash",
                               ByteView{w.bytes().data(), w.size()});
  });
}

void AccountTransaction::sign(const crypto::KeyPair& key, Rng& rng) {
  from = key.account_id();
  pubkey = key.public_key();
  invalidate_digests();  // `from` is inside both digests
  signature = key.sign(sighash().view(), rng);
  id_memo_.invalidate();  // the id covers the signature just written
}

bool AccountTransaction::verify_signature(
    crypto::SignatureCache* sigcache) const {
  if (crypto::account_of(pubkey) != from) return false;
  return crypto::verify_cached(sigcache, pubkey, sighash(), signature);
}

}  // namespace dlt::chain
