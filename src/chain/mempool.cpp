#include "chain/mempool.hpp"

#include <algorithm>

namespace dlt::chain {

Status UtxoMempool::add(const UtxoTransaction& tx, const UtxoSet& utxo,
                        std::uint32_t height,
                        crypto::SignatureCache* sigcache) {
  const TxId id = tx.id();
  if (pool_.count(id)) return make_error("already-pooled");
  for (const TxIn& in : tx.inputs)
    if (claimed_.count(in.prevout))
      return make_error("mempool-conflict", "input claimed by pooled tx");

  auto fee = utxo.check_transaction(tx, height, sigcache);
  if (!fee) return fee.error();

  Entry entry{tx, *fee, tx.serialized_size()};
  pending_bytes_ += entry.bytes;
  for (const TxIn& in : tx.inputs) claimed_[in.prevout] = id;
  pool_.emplace(id, std::move(entry));
  return Status::success();
}

std::vector<UtxoTransaction> UtxoMempool::select(
    std::uint64_t max_bytes) const {
  std::vector<const Entry*> order;
  order.reserve(pool_.size());
  for (const auto& [id, entry] : pool_) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    return a->fee_rate() > b->fee_rate();
  });

  std::vector<UtxoTransaction> out;
  std::uint64_t used = 0;
  for (const Entry* e : order) {
    if (max_bytes > 0 && used + e->bytes > max_bytes) continue;
    out.push_back(e->tx);
    used += e->bytes;
  }
  return out;
}

void UtxoMempool::remove_included(const std::vector<UtxoTransaction>& txs) {
  // Inputs spent by the block invalidate any pool entry claiming them.
  for (const UtxoTransaction& tx : txs) {
    auto it = pool_.find(tx.id());
    if (it != pool_.end()) {
      pending_bytes_ -= it->second.bytes;
      for (const TxIn& in : it->second.tx.inputs) claimed_.erase(in.prevout);
      pool_.erase(it);
    }
    for (const TxIn& in : tx.inputs) {
      auto claim = claimed_.find(in.prevout);
      if (claim == claimed_.end()) continue;
      auto conflict = pool_.find(claim->second);
      if (conflict != pool_.end()) {
        pending_bytes_ -= conflict->second.bytes;
        for (const TxIn& cin : conflict->second.tx.inputs)
          claimed_.erase(cin.prevout);
        pool_.erase(conflict);
      } else {
        claimed_.erase(claim);
      }
    }
  }
}

void UtxoMempool::reinject(const std::vector<UtxoTransaction>& txs,
                           const UtxoSet& utxo, std::uint32_t height,
                           crypto::SignatureCache* sigcache) {
  for (const UtxoTransaction& tx : txs) {
    if (tx.is_coinbase()) continue;       // coinbases die with their block
    (void)add(tx, utxo, height, sigcache);  // best effort
  }
}

Status AccountMempool::add(const AccountTransaction& tx,
                           const WorldState& state,
                           crypto::SignatureCache* sigcache) {
  if (!tx.verify_signature(sigcache)) return make_error("bad-signature");
  auto account = state.get(tx.from);
  const std::uint64_t base_nonce = account ? account->nonce : 0;
  if (tx.nonce < base_nonce)
    return make_error("stale-nonce", "nonce already used");

  auto& queue = by_sender_[tx.from];
  if (queue.count(tx.nonce)) return make_error("duplicate-nonce");
  // Contiguity: nonce must extend the queue (or be the base nonce).
  const std::uint64_t expected =
      queue.empty() ? base_nonce : queue.rbegin()->first + 1;
  if (tx.nonce != expected)
    return make_error("nonce-gap", "non-contiguous nonce");

  queue.emplace(tx.nonce, tx);
  return Status::success();
}

std::vector<AccountTransaction> AccountMempool::select(
    std::uint64_t gas_limit, const WorldState& state) const {
  // Per-sender cursors; repeatedly take the best-priced executable head.
  struct Cursor {
    std::map<std::uint64_t, AccountTransaction>::const_iterator it, end;
  };
  std::vector<Cursor> cursors;
  for (const auto& [sender, queue] : by_sender_) {
    auto account = state.get(sender);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto it = queue.find(next_nonce);
    if (it != queue.end()) cursors.push_back({it, queue.end()});
  }

  std::vector<AccountTransaction> out;
  std::uint64_t gas_used = 0;
  for (;;) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.it == c.end) continue;
      if (gas_limit > 0 && gas_used + c.it->second.gas_used() > gas_limit)
        continue;
      if (!best || c.it->second.gas_price > best->it->second.gas_price)
        best = &c;
    }
    if (!best) break;
    out.push_back(best->it->second);
    gas_used += best->it->second.gas_used();
    ++best->it;
  }
  return out;
}

void AccountMempool::remove_included(
    const std::vector<AccountTransaction>& txs) {
  for (const AccountTransaction& tx : txs) {
    auto it = by_sender_.find(tx.from);
    if (it == by_sender_.end()) continue;
    // The included nonce and anything below it are now unusable.
    auto& queue = it->second;
    queue.erase(queue.begin(), queue.upper_bound(tx.nonce));
    if (queue.empty()) by_sender_.erase(it);
  }
}

void AccountMempool::reinject(const std::vector<AccountTransaction>& txs,
                              const WorldState& state,
                              crypto::SignatureCache* sigcache) {
  // Disconnected-block txs come back in nonce order per sender.
  std::vector<AccountTransaction> sorted = txs;
  std::sort(sorted.begin(), sorted.end(),
            [](const AccountTransaction& a, const AccountTransaction& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.nonce < b.nonce;
            });
  for (const AccountTransaction& tx : sorted) (void)add(tx, state, sigcache);
}

void AccountMempool::revalidate(const WorldState& state) {
  for (auto it = by_sender_.begin(); it != by_sender_.end();) {
    auto account = state.get(it->first);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto& queue = it->second;
    queue.erase(queue.begin(), queue.lower_bound(next_nonce));
    it = queue.empty() ? by_sender_.erase(it) : std::next(it);
  }
}

bool AccountMempool::contains(const Hash256& id) const {
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, tx] : queue)
      if (tx.id() == id) return true;
  return false;
}

std::size_t AccountMempool::size() const {
  std::size_t n = 0;
  for (const auto& [sender, queue] : by_sender_) n += queue.size();
  return n;
}

std::uint64_t AccountMempool::pending_gas() const {
  std::uint64_t gas = 0;
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, tx] : queue) gas += tx.gas_used();
  return gas;
}

}  // namespace dlt::chain
