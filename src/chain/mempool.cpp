#include "chain/mempool.hpp"

#include <algorithm>

namespace dlt::chain {

Status UtxoMempool::add(const UtxoTransaction& tx, const UtxoSet& utxo,
                        std::uint32_t height,
                        crypto::SignatureCache* sigcache) {
  const TxId id = tx.id();
  if (pool_.count(id)) return make_error("already-pooled");
  for (const TxIn& in : tx.inputs)
    if (claimed_.count(in.prevout))
      return make_error("mempool-conflict", "input claimed by pooled tx");

  auto fee = utxo.check_transaction(tx, height, sigcache);
  if (!fee) return fee.error();

  Entry entry{tx, *fee, tx.serialized_size(), next_seq_++};
  pending_bytes_ += entry.bytes;
  for (const TxIn& in : tx.inputs) claimed_[in.prevout] = id;
  auto [it, inserted] = pool_.emplace(id, std::move(entry));
  by_rate_.emplace(SelKey{it->second.fee_rate(), it->second.seq},
                   &it->second);
  return Status::success();
}

std::vector<UtxoTransaction> UtxoMempool::select(
    std::uint64_t max_bytes) const {
  std::vector<UtxoTransaction> out;
  std::uint64_t used = 0;
  for (const auto& [key, e] : by_rate_) {
    if (max_bytes > 0 && used + e->bytes > max_bytes) continue;
    out.push_back(e->tx);
    used += e->bytes;
  }
  return out;
}

void UtxoMempool::drop_entry(std::unordered_map<TxId, Entry>::iterator it) {
  const Entry& entry = it->second;
  pending_bytes_ -= entry.bytes;
  by_rate_.erase(SelKey{entry.fee_rate(), entry.seq});
  for (const TxIn& in : entry.tx.inputs) claimed_.erase(in.prevout);
  pool_.erase(it);
}

void UtxoMempool::remove_included(const std::vector<UtxoTransaction>& txs) {
  // Inputs spent by the block invalidate any pool entry claiming them.
  for (const UtxoTransaction& tx : txs) {
    auto it = pool_.find(tx.id());
    if (it != pool_.end()) drop_entry(it);
    for (const TxIn& in : tx.inputs) {
      auto claim = claimed_.find(in.prevout);
      if (claim == claimed_.end()) continue;
      auto conflict = pool_.find(claim->second);
      if (conflict != pool_.end()) {
        drop_entry(conflict);
      } else {
        claimed_.erase(claim);
      }
    }
  }
}

void UtxoMempool::reinject(const std::vector<UtxoTransaction>& txs,
                           const UtxoSet& utxo, std::uint32_t height,
                           crypto::SignatureCache* sigcache) {
  for (const UtxoTransaction& tx : txs) {
    if (tx.is_coinbase()) continue;       // coinbases die with their block
    (void)add(tx, utxo, height, sigcache);  // best effort
  }
}

Status AccountMempool::add(const AccountTransaction& tx,
                           const WorldState& state,
                           crypto::SignatureCache* sigcache) {
  if (!tx.verify_signature(sigcache)) return make_error("bad-signature");
  auto account = state.get(tx.from);
  const std::uint64_t base_nonce = account ? account->nonce : 0;
  if (tx.nonce < base_nonce)
    return make_error("stale-nonce", "nonce already used");

  auto& queue = by_sender_[tx.from];
  if (queue.count(tx.nonce)) return make_error("duplicate-nonce");
  // Contiguity: nonce must extend the queue (or be the base nonce).
  const std::uint64_t expected =
      queue.empty() ? base_nonce : queue.rbegin()->first + 1;
  if (tx.nonce != expected)
    return make_error("nonce-gap", "non-contiguous nonce");

  queue.emplace(tx.nonce, tx);
  return Status::success();
}

std::vector<AccountTransaction> AccountMempool::select(
    std::uint64_t gas_limit, const WorldState& state) const {
  // Per-sender cursors in a max-heap keyed by the head transaction's gas
  // price (ties: smaller sender id first, a deterministic canonical
  // order). Each pick is O(log senders); nonce order is preserved because
  // only the head of each sender's queue is ever eligible.
  struct Cursor {
    std::map<std::uint64_t, AccountTransaction>::const_iterator it, end;
    crypto::AccountId sender;
  };
  // std::push_heap keeps the *greatest* element first, so "less" means
  // lower price, or equal price with a larger sender id.
  const auto worse = [](const Cursor& a, const Cursor& b) {
    const std::uint64_t pa = a.it->second.gas_price;
    const std::uint64_t pb = b.it->second.gas_price;
    if (pa != pb) return pa < pb;
    return b.sender < a.sender;
  };

  std::vector<Cursor> heap;
  for (const auto& [sender, queue] : by_sender_) {
    auto account = state.get(sender);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto it = queue.find(next_nonce);
    if (it != queue.end()) heap.push_back({it, queue.end(), sender});
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  std::vector<AccountTransaction> out;
  std::uint64_t gas_used = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Cursor c = heap.back();
    heap.pop_back();
    const AccountTransaction& tx = c.it->second;
    if (gas_limit > 0 && gas_used + tx.gas_used() > gas_limit) {
      // Head does not fit; gas_used only grows, so this sender is done
      // (its later nonces cannot be picked before the head).
      continue;
    }
    out.push_back(tx);
    gas_used += tx.gas_used();
    if (++c.it != c.end) {
      heap.push_back(c);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

void AccountMempool::remove_included(
    const std::vector<AccountTransaction>& txs) {
  for (const AccountTransaction& tx : txs) {
    auto it = by_sender_.find(tx.from);
    if (it == by_sender_.end()) continue;
    // The included nonce and anything below it are now unusable.
    auto& queue = it->second;
    queue.erase(queue.begin(), queue.upper_bound(tx.nonce));
    if (queue.empty()) by_sender_.erase(it);
  }
}

void AccountMempool::reinject(const std::vector<AccountTransaction>& txs,
                              const WorldState& state,
                              crypto::SignatureCache* sigcache) {
  // Disconnected-block txs come back in nonce order per sender.
  std::vector<AccountTransaction> sorted = txs;
  std::sort(sorted.begin(), sorted.end(),
            [](const AccountTransaction& a, const AccountTransaction& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.nonce < b.nonce;
            });
  for (const AccountTransaction& tx : sorted) (void)add(tx, state, sigcache);
}

void AccountMempool::revalidate(const WorldState& state) {
  for (auto it = by_sender_.begin(); it != by_sender_.end();) {
    auto account = state.get(it->first);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto& queue = it->second;
    queue.erase(queue.begin(), queue.lower_bound(next_nonce));
    it = queue.empty() ? by_sender_.erase(it) : std::next(it);
  }
}

bool AccountMempool::contains(const Hash256& id) const {
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, tx] : queue)
      if (tx.id() == id) return true;
  return false;
}

std::size_t AccountMempool::size() const {
  std::size_t n = 0;
  for (const auto& [sender, queue] : by_sender_) n += queue.size();
  return n;
}

std::uint64_t AccountMempool::pending_gas() const {
  std::uint64_t gas = 0;
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, tx] : queue) gas += tx.gas_used();
  return gas;
}

}  // namespace dlt::chain
