#include "chain/mempool.hpp"

#include <algorithm>

namespace dlt::chain {

Status UtxoMempool::add(const UtxoTransaction& tx, const UtxoSet& utxo,
                        std::uint32_t height,
                        crypto::SignatureCache* sigcache) {
  const TxId id = tx.id();
  if (pool_.count(id)) return make_error("already-pooled");
  std::vector<TxId> conflicts;
  for (const TxIn& in : tx.inputs) {
    auto claim = claimed_.find(in.prevout);
    if (claim != claimed_.end()) conflicts.push_back(claim->second);
  }
  if (!conflicts.empty() && !replace_by_fee_)
    return make_error("mempool-conflict", "input claimed by pooled tx");

  auto fee = utxo.check_transaction(tx, height, sigcache);
  if (!fee) return fee.error();

  const std::size_t bytes = tx.serialized_size();
  const double rate = static_cast<double>(*fee) / static_cast<double>(bytes);

  if (!conflicts.empty()) {
    // Replace-by-fee: the newcomer must strictly out-bid EVERY pooled
    // conflict's fee rate; then the conflicts (and their descendant
    // closures) are evicted. Equal rates never replace.
    std::sort(conflicts.begin(), conflicts.end());
    conflicts.erase(std::unique(conflicts.begin(), conflicts.end()),
                    conflicts.end());
    for (const TxId& cid : conflicts) {
      auto it = pool_.find(cid);
      if (it != pool_.end() && it->second.fee_rate() >= rate)
        return make_error("mempool-conflict", "replacement fee rate too low");
    }
    for (const TxId& cid : conflicts) evict_tx(cid);
  }

  if (capacity_ > 0) {
    if (bytes > capacity_)
      return make_error("mempool-full", "transaction larger than capacity");
    if (pending_bytes_ + bytes > capacity_) {
      // Plan before evicting: walk victims from the worst fee rate up
      // (newest among ties — the canonical tiebreak, see header), each
      // bringing its pooled descendant closure along. Only strictly
      // lower-rate victims qualify; if the plan cannot free enough bytes
      // the add backpressures WITHOUT disturbing the pool.
      std::unordered_set<TxId> planned;
      std::vector<TxId> victims;
      std::uint64_t freed = 0;
      auto it = by_rate_.rbegin();
      while (pending_bytes_ - freed + bytes > capacity_) {
        while (it != by_rate_.rend() &&
               planned.count(it->second->tx.id()) != 0)
          ++it;
        if (it == by_rate_.rend() || it->first.rate >= rate)
          return make_error("mempool-full", "fee rate below eviction floor");
        const TxId vid = it->second->tx.id();
        freed += plan_closure(vid, planned);
        victims.push_back(vid);
        ++it;
      }
      for (const TxId& vid : victims) evict_tx(vid);
    }
  }

  Entry entry{tx, *fee, bytes, next_seq_++};
  pending_bytes_ += entry.bytes;
  for (const TxIn& in : tx.inputs) claimed_[in.prevout] = id;
  auto [it, inserted] = pool_.emplace(id, std::move(entry));
  by_rate_.emplace(SelKey{it->second.fee_rate(), it->second.seq},
                   &it->second);
  return Status::success();
}

std::vector<UtxoTransaction> UtxoMempool::select(
    std::uint64_t max_bytes) const {
  std::vector<UtxoTransaction> out;
  std::uint64_t used = 0;
  for (const auto& [key, e] : by_rate_) {
    if (max_bytes > 0 && used + e->bytes > max_bytes) continue;
    out.push_back(e->tx);
    used += e->bytes;
  }
  return out;
}

void UtxoMempool::drop_entry(std::unordered_map<TxId, Entry>::iterator it) {
  const Entry& entry = it->second;
  pending_bytes_ -= entry.bytes;
  by_rate_.erase(SelKey{entry.fee_rate(), entry.seq});
  for (const TxIn& in : entry.tx.inputs) claimed_.erase(in.prevout);
  pool_.erase(it);
}

std::uint64_t UtxoMempool::plan_closure(
    const TxId& id, std::unordered_set<TxId>& planned) const {
  if (!planned.insert(id).second) return 0;
  auto it = pool_.find(id);
  if (it == pool_.end()) return 0;
  std::uint64_t bytes = it->second.bytes;
  for (std::uint32_t j = 0;
       j < static_cast<std::uint32_t>(it->second.tx.outputs.size()); ++j) {
    auto claim = claimed_.find(Outpoint{id, j});
    if (claim != claimed_.end()) bytes += plan_closure(claim->second, planned);
  }
  return bytes;
}

void UtxoMempool::evict_tx(const TxId& id) {
  auto it = pool_.find(id);
  if (it == pool_.end()) return;
  // Copy: the recursion and the handler run while iterators churn.
  const UtxoTransaction tx = it->second.tx;
  for (std::uint32_t j = 0; j < static_cast<std::uint32_t>(tx.outputs.size());
       ++j) {
    auto claim = claimed_.find(Outpoint{id, j});
    if (claim != claimed_.end()) evict_tx(claim->second);
  }
  it = pool_.find(id);
  if (it == pool_.end()) return;
  drop_entry(it);
  if (evict_handler_) evict_handler_(tx);
}

void UtxoMempool::remove_included(const std::vector<UtxoTransaction>& txs) {
  // Inputs spent by the block invalidate any pool entry claiming them.
  for (const UtxoTransaction& tx : txs) {
    auto it = pool_.find(tx.id());
    if (it != pool_.end()) drop_entry(it);
    for (const TxIn& in : tx.inputs) {
      auto claim = claimed_.find(in.prevout);
      if (claim == claimed_.end()) continue;
      auto conflict = pool_.find(claim->second);
      if (conflict != pool_.end()) {
        drop_entry(conflict);
      } else {
        claimed_.erase(claim);
      }
    }
  }
}

void UtxoMempool::reinject(const std::vector<UtxoTransaction>& txs,
                           const UtxoSet& utxo, std::uint32_t height,
                           crypto::SignatureCache* sigcache) {
  for (const UtxoTransaction& tx : txs) {
    if (tx.is_coinbase()) continue;  // coinbases die with their block
    Status st = add(tx, utxo, height, sigcache);  // best effort
    // A reinject refused by the fee market is an explicit eviction (the
    // tx was standing before the reorg); surface it so admission.*
    // reconciles. Validation failures (re-mined elsewhere) stay silent.
    if (!st.ok() && st.error().code == "mempool-full" && evict_handler_)
      evict_handler_(tx);
  }
}

std::uint64_t AccountMempool::entry_bytes(const AccountTransaction& tx) const {
  const std::size_t b = tx.serialized_size();
  return b == 0 ? 1 : static_cast<std::uint64_t>(b);
}

Status AccountMempool::add(const AccountTransaction& tx,
                           const WorldState& state,
                           crypto::SignatureCache* sigcache) {
  if (!tx.verify_signature(sigcache)) return make_error("bad-signature");
  auto account = state.get(tx.from);
  const std::uint64_t base_nonce = account ? account->nonce : 0;
  if (tx.nonce < base_nonce)
    return make_error("stale-nonce", "nonce already used");

  const std::uint64_t bytes = entry_bytes(tx);
  if (capacity_ > 0 && bytes > capacity_)
    return make_error("mempool-full", "transaction larger than capacity");

  auto& queue = by_sender_[tx.from];
  auto existing = queue.find(tx.nonce);
  const bool replacing = existing != queue.end();
  if (replacing) {
    // Same-nonce replacement is opt-in and requires a strictly higher
    // gas price — equal prices never replace.
    if (!replacement_ || tx.gas_price <= existing->second.tx.gas_price)
      return make_error("duplicate-nonce");
  } else {
    // Contiguity: nonce must extend the queue (or be the base nonce).
    const std::uint64_t expected =
        queue.empty() ? base_nonce : queue.rbegin()->first + 1;
    if (tx.nonce != expected)
      return make_error("nonce-gap", "non-contiguous nonce");
  }

  std::uint64_t occupied = pending_bytes_;
  if (replacing) occupied -= existing->second.bytes;
  if (capacity_ > 0 && occupied + bytes > capacity_) {
    // Plan capacity victims without mutating: candidates are other
    // senders' queue TAILS (never interior nonces — that would orphan
    // the rest of the queue, and never the incoming sender's own tail —
    // that would gap the incoming nonce). The victim order is a total
    // one — lowest gas price, newest admission (highest seq) among ties
    // — so the unordered sender scan cannot leak iteration order.
    struct Victim {
      crypto::AccountId sender;
      std::uint64_t nonce = 0;
    };
    std::unordered_map<crypto::AccountId, std::size_t> planned_tail;
    std::vector<Victim> victims;
    std::uint64_t freed = 0;
    while (occupied - freed + bytes > capacity_) {
      const Entry* best = nullptr;
      Victim pick;
      for (const auto& [sender, q] : by_sender_) {
        if (sender == tx.from) continue;
        const std::size_t skip = planned_tail[sender];
        if (skip >= q.size()) continue;
        auto rit = std::next(q.rbegin(), static_cast<std::ptrdiff_t>(skip));
        const Entry& cand = rit->second;
        if (best == nullptr ||
            cand.tx.gas_price < best->tx.gas_price ||
            (cand.tx.gas_price == best->tx.gas_price &&
             cand.seq > best->seq)) {
          best = &cand;
          pick = Victim{sender, rit->first};
        }
      }
      if (best == nullptr || best->tx.gas_price >= tx.gas_price)
        return make_error("mempool-full", "gas price below eviction floor");
      freed += best->bytes;
      ++planned_tail[pick.sender];
      victims.push_back(pick);
    }
    // Commit tail-first per sender (victims were planned that way).
    for (const Victim& v : victims) {
      auto sit = by_sender_.find(v.sender);
      if (sit == by_sender_.end()) continue;
      auto eit = sit->second.find(v.nonce);
      if (eit == sit->second.end()) continue;
      const Entry victim = eit->second;
      note_drop(victim);
      sit->second.erase(eit);
      if (sit->second.empty()) by_sender_.erase(sit);
      if (evict_handler_) evict_handler_(victim.tx);
    }
  }

  if (replacing) {
    const Entry old = existing->second;
    note_drop(old);
    existing->second = Entry{tx, next_seq_++, bytes};
    pending_bytes_ += bytes;
    if (evict_handler_) evict_handler_(old.tx);
  } else {
    queue.emplace(tx.nonce, Entry{tx, next_seq_++, bytes});
    pending_bytes_ += bytes;
  }
  return Status::success();
}

std::vector<AccountTransaction> AccountMempool::select(
    std::uint64_t gas_limit, const WorldState& state) const {
  // Per-sender cursors in a max-heap keyed by the head transaction's gas
  // price (ties: smaller sender id first, a deterministic canonical
  // order). Each pick is O(log senders); nonce order is preserved because
  // only the head of each sender's queue is ever eligible.
  struct Cursor {
    std::map<std::uint64_t, Entry>::const_iterator it, end;
    crypto::AccountId sender;
  };
  // std::push_heap keeps the *greatest* element first, so "less" means
  // lower price, or equal price with a larger sender id.
  const auto worse = [](const Cursor& a, const Cursor& b) {
    const std::uint64_t pa = a.it->second.tx.gas_price;
    const std::uint64_t pb = b.it->second.tx.gas_price;
    if (pa != pb) return pa < pb;
    return b.sender < a.sender;
  };

  std::vector<Cursor> heap;
  for (const auto& [sender, queue] : by_sender_) {
    auto account = state.get(sender);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto it = queue.find(next_nonce);
    if (it != queue.end()) heap.push_back({it, queue.end(), sender});
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  std::vector<AccountTransaction> out;
  std::uint64_t gas_used = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Cursor c = heap.back();
    heap.pop_back();
    const AccountTransaction& tx = c.it->second.tx;
    if (gas_limit > 0 && gas_used + tx.gas_used() > gas_limit) {
      // Head does not fit; gas_used only grows, so this sender is done
      // (its later nonces cannot be picked before the head).
      continue;
    }
    out.push_back(tx);
    gas_used += tx.gas_used();
    if (++c.it != c.end) {
      heap.push_back(c);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

void AccountMempool::remove_included(
    const std::vector<AccountTransaction>& txs) {
  for (const AccountTransaction& tx : txs) {
    auto it = by_sender_.find(tx.from);
    if (it == by_sender_.end()) continue;
    // The included nonce and anything below it are now unusable.
    auto& queue = it->second;
    const auto last = queue.upper_bound(tx.nonce);
    for (auto e = queue.begin(); e != last; ++e) note_drop(e->second);
    queue.erase(queue.begin(), last);
    if (queue.empty()) by_sender_.erase(it);
  }
}

void AccountMempool::reinject(const std::vector<AccountTransaction>& txs,
                              const WorldState& state,
                              crypto::SignatureCache* sigcache) {
  // Disconnected-block txs come back in nonce order per sender.
  std::vector<AccountTransaction> sorted = txs;
  std::sort(sorted.begin(), sorted.end(),
            [](const AccountTransaction& a, const AccountTransaction& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.nonce < b.nonce;
            });
  for (const AccountTransaction& tx : sorted) {
    Status st = add(tx, state, sigcache);
    // Capacity-refused reinjects are explicit evictions (see UtxoMempool).
    if (!st.ok() && st.error().code == "mempool-full" && evict_handler_)
      evict_handler_(tx);
  }
}

void AccountMempool::revalidate(const WorldState& state) {
  for (auto it = by_sender_.begin(); it != by_sender_.end();) {
    auto account = state.get(it->first);
    const std::uint64_t next_nonce = account ? account->nonce : 0;
    auto& queue = it->second;
    const auto last = queue.lower_bound(next_nonce);
    for (auto e = queue.begin(); e != last; ++e) note_drop(e->second);
    queue.erase(queue.begin(), last);
    it = queue.empty() ? by_sender_.erase(it) : std::next(it);
  }
}

bool AccountMempool::contains_nonce(const crypto::AccountId& sender,
                                    std::uint64_t nonce) const {
  auto it = by_sender_.find(sender);
  return it != by_sender_.end() && it->second.count(nonce) != 0;
}

bool AccountMempool::contains(const Hash256& id) const {
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, e] : queue)
      if (e.tx.id() == id) return true;
  return false;
}

std::size_t AccountMempool::size() const {
  std::size_t n = 0;
  for (const auto& [sender, queue] : by_sender_) n += queue.size();
  return n;
}

std::uint64_t AccountMempool::pending_gas() const {
  std::uint64_t gas = 0;
  for (const auto& [sender, queue] : by_sender_)
    for (const auto& [nonce, e] : queue) gas += e.tx.gas_used();
  return gas;
}

}  // namespace dlt::chain
