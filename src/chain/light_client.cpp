#include "chain/light_client.hpp"

#include <cmath>

#include "chain/difficulty.hpp"

namespace dlt::chain {

Status LightClient::set_genesis(const BlockHeader& genesis) {
  if (!genesis.is_genesis())
    return make_error("not-genesis", "header has a parent");
  if (!headers_.empty()) return make_error("already-initialized");
  headers_.push_back(genesis);
  return Status::success();
}

const BlockHeader* LightClient::header_at(std::uint32_t h) const {
  if (h >= headers_.size()) return nullptr;
  return &headers_[h];
}

double LightClient::next_difficulty() const {
  const BlockHeader& parent = headers_.back();
  if (params_.consensus == ConsensusKind::kProofOfStake) return 1.0;
  const std::uint32_t h_next =
      static_cast<std::uint32_t>(headers_.size());
  const std::uint32_t window = params_.retarget_window;
  if (window == 0 || h_next % window != 0) return parent.difficulty;

  std::uint32_t anc_height;
  std::uint32_t intervals;
  if (window == 1) {
    if (headers_.size() < 2) return parent.difficulty;
    anc_height = h_next - 2;
    intervals = 1;
  } else {
    if (h_next < window) return parent.difficulty;
    anc_height = h_next - window;
    intervals = window - 1;
  }
  const double span = parent.timestamp - headers_[anc_height].timestamp;
  return retarget_difficulty(params_, parent.difficulty, span, intervals);
}

Status LightClient::accept_header(const BlockHeader& header) {
  if (headers_.empty())
    return make_error("uninitialized", "set_genesis first");
  const BlockHeader& parent = headers_.back();
  if (header.parent != parent.hash())
    return make_error("wrong-parent",
                      "header does not extend this client's chain");
  if (header.height != parent.height + 1) return make_error("bad-height");
  if (header.timestamp + 1e-9 < parent.timestamp)
    return make_error("timestamp-regression");
  const double expected = next_difficulty();
  if (std::abs(header.difficulty - expected) >
      1e-9 * std::max(1.0, expected))
    return make_error("bad-difficulty");
  if (params_.verify_pow &&
      params_.consensus == ConsensusKind::kProofOfWork &&
      !meets_target(header.pow_digest(), header.difficulty))
    return make_error("bad-pow");
  headers_.push_back(header);
  return Status::success();
}

Result<std::uint32_t> LightClient::verify_inclusion(
    const InclusionProof& proof) const {
  const BlockHeader* header = header_at(proof.height);
  if (!header)
    return make_error("unknown-height", "client has not synced that far");
  if (!crypto::MerkleTree::verify(header->merkle_root, proof.txid,
                                  proof.index, proof.merkle))
    return make_error("bad-proof", "merkle path does not reach the root");
  return height() - proof.height + 1;  // confirmations (paper §IV-A)
}

Result<InclusionProof> make_inclusion_proof(const Blockchain& chain,
                                            const TxId& txid) {
  auto h = chain.tx_height(txid);
  if (!h) return make_error("unknown-tx", "not on the active chain");
  const Block* block = chain.at_height(*h);
  if (!block) return make_error("unknown-block");
  if (block->tx_count() == 0)
    return make_error("pruned", "block body no longer stored (§V-A)");

  const std::vector<Hash256> ids = block->tx_ids();
  std::size_t index = ids.size();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == txid) {
      index = i;
      break;
    }
  }
  if (index == ids.size()) return make_error("index-mismatch");

  crypto::MerkleTree tree(ids);
  auto merkle = tree.prove(index);
  if (!merkle) return merkle.error();

  InclusionProof proof;
  proof.txid = txid;
  proof.height = *h;
  proof.index = index;
  proof.merkle = std::move(*merkle);
  return proof;
}

}  // namespace dlt::chain
