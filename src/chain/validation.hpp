// Chain-facing aliases for the shared validation verdicts.
//
// The verdict structs were promoted to core/validation.hpp when the
// collect/shard/join pipeline became common to all three ledgers; these
// aliases keep the historical dlt::chain spellings working (the pipeline
// itself lives in chain::Blockchain::compute_verdicts).
#pragma once

#include "core/validation.hpp"

namespace dlt::chain {

using InputVerdict = core::InputVerdict;
using TxVerdict = core::TxVerdict;
using BlockVerdicts = core::BlockVerdicts;

}  // namespace dlt::chain
