// Verdicts produced by the sharded stateless-validation phase and consumed
// by the serial state-application phase of block connect.
//
// The pipeline (chain::Blockchain::compute_verdicts) runs signature checks
// and signer derivation for every input of every transaction on the verify
// pool, writing each result into a pre-sized slot. The serial consume loop
// then reads the slots in (tx, input) order instead of re-running the
// expensive checks, so the error it reports for an invalid block is the
// same one the serial reference path reports: `crypto::verify` is pure,
// which makes a verdict slot equivalent to an inline check at the same
// position in the serial order.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/keys.hpp"

namespace dlt::chain {

/// One signed input (UTXO model) or the single authorizing signature of an
/// account transaction.
struct InputVerdict {
  crypto::AccountId signer{};  // account_of(pubkey), for the owner check
  bool sig_ok = false;         // signature valid over the tx sighash
};

struct TxVerdict {
  std::vector<InputVerdict> inputs;  // index-aligned with tx.inputs
};

/// Index-aligned with the block's transaction list.
struct BlockVerdicts {
  std::vector<TxVerdict> txs;

  const TxVerdict* tx(std::size_t i) const {
    return i < txs.size() ? &txs[i] : nullptr;
  }
};

}  // namespace dlt::chain
