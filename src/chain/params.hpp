// Consensus parameters for blockchain instances (paper §II-A, §VI-A).
//
// Two presets mirror the paper's reference implementations:
//  - bitcoin_like():  10-minute blocks, 1 MB size cap  -> 3-7 TPS
//  - ethereum_like(): 15-second blocks, gas-limited    -> 7-15 TPS
// plus pos_like(): the §VI-A "transition to PoS should decrease Ethereum's
// block generation time to 4 seconds or lower".
#pragma once

#include <cstdint>
#include <string>

namespace dlt::chain {

/// Token amounts. Smallest unit (satoshi / wei analogue).
using Amount = std::uint64_t;

enum class TxModel {
  kUtxo,     // Bitcoin: unspent transaction outputs
  kAccount,  // Ethereum: balances + nonces in a state trie
};

enum class ConsensusKind {
  kProofOfWork,
  kProofOfStake,
};

struct ChainParams {
  std::string name;

  TxModel tx_model = TxModel::kUtxo;
  ConsensusKind consensus = ConsensusKind::kProofOfWork;

  /// Target seconds between blocks (PoW: retarget goal; PoS: slot length).
  double block_interval = 600.0;

  /// Hard cap on serialized block size in bytes (0 = uncapped; Ethereum
  /// caps by gas instead).
  std::uint64_t max_block_bytes = 1'000'000;

  /// Gas cap per block (account model only; 0 = unlimited).
  std::uint64_t block_gas_limit = 0;

  /// Difficulty retarget window in blocks (Bitcoin: 2016).
  std::uint32_t retarget_window = 2016;
  /// Max factor the difficulty may move per retarget (Bitcoin: 4).
  double retarget_clamp = 4.0;

  /// Initial difficulty: expected hash attempts per block.
  double initial_difficulty = 1.0e6;

  /// Extra bytes added to every block's modelled wire size. Lets a
  /// simulation reproduce FULL blocks' propagation cost (fork pressure,
  /// §VI-A) without materializing every transaction.
  std::uint64_t simulated_extra_block_bytes = 0;

  /// When true, blocks must carry a real hashcash solution and receivers
  /// verify it. Large-scale simulations disable verification and model the
  /// mining race statistically (identical in distribution; see DESIGN.md),
  /// while unit tests and examples run real PoW at low difficulty.
  bool verify_pow = true;

  /// Block subsidy paid to the miner/proposer.
  Amount block_reward = 50'0000'0000ULL;  // 50 coins at 1e8 units

  /// Depth at which the implementation's community deems a block
  /// confirmed (paper §IV-A: 6 for Bitcoin, 5-11 for Ethereum).
  std::uint32_t confirmation_depth = 6;

  /// Receipt bytes stored per transaction (account model; fast sync
  /// downloads receipts alongside blocks, §V-A).
  std::uint64_t receipt_bytes_per_tx = 120;

  /// PoS only: epoch length in blocks for Casper-style checkpoints.
  std::uint32_t epoch_length = 50;
  /// PoS only: fraction of total stake whose votes justify a checkpoint.
  double checkpoint_quorum = 2.0 / 3.0;
};

ChainParams bitcoin_like();
ChainParams ethereum_like();
ChainParams pos_like();

}  // namespace dlt::chain
