#include "chain/state.hpp"

#include "support/serialize.hpp"

namespace dlt::chain {

Bytes AccountState::encode() const {
  Writer w;
  w.u64(balance);
  w.u64(nonce);
  w.u32(code_size);
  return std::move(w).take();
}

Result<AccountState> AccountState::decode(ByteView raw) {
  Reader r(raw);
  AccountState st;
  auto b = r.u64();
  if (!b) return b.error();
  st.balance = *b;
  auto n = r.u64();
  if (!n) return n.error();
  st.nonce = *n;
  auto c = r.u32();
  if (!c) return c.error();
  st.code_size = *c;
  return st;
}

std::optional<AccountState> WorldState::get(
    const crypto::AccountId& id) const {
  auto raw = trie_.get(id);
  if (!raw) return std::nullopt;
  auto st = AccountState::decode(ByteView{raw->data(), raw->size()});
  if (!st) return std::nullopt;
  return *st;
}

Amount WorldState::balance_of(const crypto::AccountId& id) const {
  auto st = get(id);
  return st ? st->balance : 0;
}

WorldState WorldState::with_account(const crypto::AccountId& id,
                                    const AccountState& st) const {
  return WorldState(trie_.put(id, st.encode()));
}

Result<WorldState> WorldState::apply_transaction(
    const AccountTransaction& tx, const crypto::AccountId& fee_recipient,
    const GasSchedule& gs, crypto::SignatureCache* sigcache,
    const TxVerdict* verdict) const {
  auto checked = check_account_transaction(
      [this](const crypto::AccountId& id) { return get(id); }, tx, gs,
      sigcache, verdict);
  if (!checked) return checked.error();
  const Amount fee = *checked;

  AccountState new_sender = *get(tx.from);
  new_sender.balance -= tx.value + fee;
  new_sender.nonce += 1;
  WorldState next = with_account(tx.from, new_sender);

  if (!tx.is_contract_creation()) {
    AccountState recipient = next.get(tx.to).value_or(AccountState{});
    recipient.balance += tx.value;
    next = next.with_account(tx.to, recipient);
  } else {
    // Contract creation: a fresh account holding the value and code.
    AccountState contract;
    contract.balance = tx.value;
    contract.code_size = tx.data_size;
    next = next.with_account(tx.id() /* contract address */, contract);
  }

  if (fee > 0) next = next.credit(fee_recipient, fee);
  return next;
}

WorldState WorldState::credit(const crypto::AccountId& id,
                              Amount amount) const {
  AccountState st = get(id).value_or(AccountState{});
  st.balance += amount;
  return with_account(id, st);
}

Amount WorldState::total_supply() const {
  Amount sum = 0;
  trie_.for_each([&sum](const crypto::Nibbles&, const Bytes& raw) {
    auto st = AccountState::decode(ByteView{raw.data(), raw.size()});
    if (st) sum += st->balance;
  });
  return sum;
}

void StateDB::put(const Hash256& root, WorldState state) {
  versions_.emplace(root, std::move(state));
}

std::optional<WorldState> StateDB::get(const Hash256& root) const {
  auto it = versions_.find(root);
  if (it == versions_.end()) return std::nullopt;
  return it->second;
}

std::size_t StateDB::prune_except(const std::vector<Hash256>& keep) {
  std::unordered_map<Hash256, WorldState> kept;
  for (const Hash256& root : keep) {
    auto it = versions_.find(root);
    if (it != versions_.end()) kept.emplace(it->first, it->second);
  }
  const std::size_t erased = versions_.size() - kept.size();
  versions_ = std::move(kept);
  return erased;
}

std::pair<std::size_t, std::size_t> StateDB::measure() const {
  std::unordered_set<const crypto::Trie::Node*> seen;
  std::size_t nodes = 0, bytes = 0;
  for (const auto& [root, state] : versions_) {
    auto [n, b] = state.trie().collect_nodes(seen);
    nodes += n;
    bytes += b;
  }
  return {nodes, bytes};
}

}  // namespace dlt::chain
