// The blockchain: block index, heaviest-chain fork choice, reorgs,
// orphan pool, state application and pruning (paper §II-A, §IV-A, §V-A).
//
// Soft forks (paper Fig. 4) arise naturally: two blocks claiming the same
// predecessor both enter the index; nodes keep building on what they saw
// first ("two chains possibly containing conflicting transactions") until
// one branch accumulates more work, at which point the loser is orphaned
// and its transactions must be re-included.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/difficulty.hpp"
#include "chain/params.hpp"
#include "chain/state.hpp"
#include "chain/utxo.hpp"
#include "chain/validation.hpp"
#include "crypto/sigcache.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel.hpp"
#include "storage/ledger_store.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace dlt::chain {

/// Initial ledger state hard-coded in the genesis block (paper §II-A:
/// "the initial state is hard-coded in the first block").
struct GenesisSpec {
  std::vector<std::pair<crypto::AccountId, Amount>> allocations;
  double timestamp = 0.0;
};

enum class Accept {
  kConnected,   // extended the active tip
  kReorged,     // switched to a heavier branch
  kSideChain,   // stored on a non-active branch
  kOrphaned,    // parent unknown; held in the orphan pool
  kDuplicate,   // already known
};

struct AcceptResult {
  Accept outcome = Accept::kConnected;
  std::uint32_t reorg_depth = 0;  // blocks disconnected (kReorged only)
};

struct ForkStats {
  std::uint64_t reorgs = 0;
  std::uint64_t blocks_disconnected = 0;  // total orphaned-off-main blocks
  std::uint32_t max_reorg_depth = 0;
  std::uint64_t side_chain_blocks = 0;    // blocks observed off the tip
};

class Blockchain {
 public:
  Blockchain(ChainParams params, GenesisSpec genesis);

  const ChainParams& params() const { return params_; }

  /// Validates and stores a block, advancing the active chain if it wins
  /// fork choice. Statelessly-invalid blocks are rejected with an error;
  /// state-invalid blocks are stored but marked invalid and never win.
  Result<AcceptResult> submit(const Block& block);

  // ---- Active chain queries -------------------------------------------
  BlockHash tip_hash() const { return active_.back(); }
  std::uint32_t height() const {
    return static_cast<std::uint32_t>(active_.size() - 1);
  }
  const Block* find(const BlockHash& hash) const;
  /// True if the block's body was discarded by prune_bodies (§V-A); such
  /// blocks cannot be served to syncing peers.
  bool body_pruned(const BlockHash& hash) const;
  const Block* at_height(std::uint32_t h) const;
  bool on_active_chain(const BlockHash& hash) const;
  double total_work() const;
  double total_work_of(const BlockHash& hash) const;

  /// Confirmations of the block containing `txid`: tip_height - h + 1, or
  /// 0 if absent from the active chain (paper §IV-A's depth rule).
  std::uint32_t confirmations(const TxId& txid) const;
  /// Height of the active-chain block containing the tx, if any.
  std::optional<std::uint32_t> tx_height(const TxId& txid) const;

  // ---- State access ----------------------------------------------------
  const UtxoSet& utxo_set() const { return utxo_; }
  /// Current world state (account model only).
  const WorldState& world_state() const { return state_; }
  StateDB& state_db() { return state_db_; }
  const StateDB& state_db() const { return state_db_; }

  // ---- Block template support (miners) ----------------------------------
  /// Difficulty required of the block that would extend `parent`.
  double next_difficulty(const BlockHash& parent) const;
  /// Validates a candidate transaction list against the current tip state
  /// and computes the resulting state root (account model).
  Result<Hash256> compute_state_root(const AccountTxList& txs,
                                     const crypto::AccountId& proposer) const;

  // ---- Finality (PoS, §IV-A Casper FFG) ---------------------------------
  /// Marks a block final: the active chain may never reorg below it.
  Status finalize(const BlockHash& hash);
  std::uint32_t finalized_height() const { return finalized_height_; }

  // ---- Persistent storage (ISSUE 9) --------------------------------------
  /// Writes the chain through to `store` at its commit points: blocks are
  /// appended to the log when they enter the index, the chainstate backend
  /// tracks connects/disconnects, and pruning becomes catalog operations.
  /// On a fresh store the genesis block and initial chainstate are
  /// persisted; on a recovered store (LedgerStore opened with
  /// truncate=false) existing records are left in place — combine with
  /// replay_from_store(). Works identically in memory and disk mode; all
  /// storage accounting is mode-independent arithmetic, so attaching a
  /// store never changes traces or RunMetrics across modes.
  void attach_store(std::shared_ptr<storage::LedgerStore> store);
  const storage::LedgerStore* store() const { return store_.get(); }

  /// Recovery: decodes every kHeader/kBody pair from the attached store's
  /// log in append order and re-submits it. Fork choice re-derives the
  /// active chain deterministically. Returns blocks accepted (duplicates
  /// and the genesis record are skipped). Idempotent: replaying into a
  /// chain that already holds the blocks is a no-op.
  std::size_t replay_from_store();

  /// Reads a block back from the attached store's log (works for bodies
  /// offloaded from RAM).
  Result<Block> read_block(const BlockHash& hash) const;

  /// Disk mode only: drops the in-RAM transaction lists and undo data of
  /// active-chain blocks deeper than `keep_depth`, keeping their bodies
  /// readable via read_block(). This is how a ledger grows past RAM: the
  /// log keeps every byte while the resident index holds headers only.
  /// Reorgs below the offload point are rejected (as with prune_bodies).
  /// Returns resident bytes dropped. §V accounting is unchanged — the
  /// bodies still exist, on disk.
  std::uint64_t offload_bodies(std::uint32_t keep_depth);

  // ---- Pruning (§V-A) ----------------------------------------------------
  /// Bitcoin-style: discards raw bodies deeper than `keep_depth` below the
  /// tip, keeping headers and the chainstate. Returns bytes reclaimed.
  std::uint64_t prune_bodies(std::uint32_t keep_depth);
  /// Ethereum-style: discards state versions except the most recent
  /// `keep_depth` active blocks'. Returns versions erased.
  std::size_t prune_states(std::uint32_t keep_depth);

  // ---- Size accounting (§V) ----------------------------------------------
  struct StorageBreakdown {
    std::uint64_t headers = 0;
    std::uint64_t bodies = 0;
    std::uint64_t undo_data = 0;
    std::uint64_t chainstate = 0;   // UTXO set or current trie
    std::uint64_t state_history = 0;  // retained trie versions
    std::uint64_t receipts = 0;
    std::uint64_t total() const {
      return headers + bodies + undo_data + chainstate + state_history +
             receipts;
    }
  };
  StorageBreakdown storage() const;

  const ForkStats& fork_stats() const { return fork_stats_; }
  std::uint64_t blocks_known() const { return index_.size(); }

  /// Fires after a block joins / leaves the active chain (mempool upkeep,
  /// confirmation metrics). Disconnect fires in reverse chain order.
  void on_connect(std::function<void(const Block&)> fn) {
    connect_hooks_.push_back(std::move(fn));
  }
  void on_disconnect(std::function<void(const Block&)> fn) {
    disconnect_hooks_.push_back(std::move(fn));
  }

  /// Fires once per applied reorg with (depth, new tip height) — exactly
  /// when ForkStats::reorgs increments, including reorgs triggered deep in
  /// orphan processing, so trace-derived counts match the aggregate.
  void on_reorg(std::function<void(std::uint32_t, std::uint32_t)> fn) {
    reorg_hook_ = std::move(fn);
  }
  /// Fires when a valid block parks on a side chain (a fork opening).
  void on_side_chain(std::function<void(const Block&)> fn) {
    side_chain_hook_ = std::move(fn);
  }

  /// ASCII diagram of the block tree near the tip (examples/Fig. 4).
  std::string render_tree(std::uint32_t from_height = 0) const;

  // ---- Crypto hot path ---------------------------------------------------
  /// Shared signature-verification cache; typically one per cluster so the
  /// first node to verify a tx serves all others. May be null.
  void set_sigcache(std::shared_ptr<crypto::SignatureCache> cache) {
    sigcache_ = std::move(cache);
  }
  crypto::SignatureCache* sigcache() const { return sigcache_.get(); }
  /// Thread pool for batch signature verification during block connect.
  /// With parallel validation off it drives the sigcache prefetch (needs a
  /// sigcache to stage results); null = serial.
  void set_verify_pool(std::shared_ptr<support::ThreadPool> pool) {
    verify_pool_ = std::move(pool);
  }

  /// Switches block connect from prefetch-then-serial-verify to the full
  /// sharded pipeline: stateless checks (signatures, signer derivation)
  /// run across the verify pool and the serial state-application phase
  /// consumes the joined verdicts. No-op without a verify pool. The
  /// serial path remains the reference implementation; both produce
  /// byte-identical traces, metrics, and ledger state for a given seed
  /// (proven by tests/parallel_validation_test.cpp).
  void set_parallel_validation(bool on) { parallel_validation_ = on; }
  bool parallel_validation() const {
    return parallel_validation_ && verify_pool_ != nullptr;
  }

  /// Shards the *stateful* phase of block connect by conflict groups:
  /// transactions are union-found on the state keys they touch (UTXO
  /// outpoints / account ids), disjoint groups are checked concurrently
  /// against the frozen pre-block state plus a group-local overlay, and the
  /// commit replays the exact serial operation sequence in block order on
  /// the calling thread. Blocks whose transactions all conflict (one
  /// spanning group), fail any group check, or touch the proposer's fee
  /// account demote to the serial reference path. No-op without a verify
  /// pool. Implies the verdict pipeline so group workers never touch the
  /// sigcache or any digest cache. Byte-identical traces, metrics and
  /// ledger state vs serial (proven by tests/state_sharding_test.cpp).
  void set_parallel_state(bool on) { parallel_state_ = on; }
  bool parallel_state() const {
    return parallel_state_ && verify_pool_ != nullptr;
  }

  /// Wall-clock profiling of the validation hot path. Durations land in
  /// `profile.connect_block_us` / `profile.prefetch_us` histograms; they
  /// never enter traces (see obs/profile.hpp). May be null.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Record {
    Block block;
    BlockHash hash;
    double total_work = 0.0;
    bool state_valid = true;   // set false when connect fails
    bool body_pruned = false;
    /// Body bytes moved out of RAM by offload_bodies (0 = resident). The
    /// §V size accounting still counts them: they live in the log.
    std::uint64_t offloaded_body_bytes = 0;
    BlockUndo undo;            // UTXO model: populated while connected
  };

  Record* find_record(const BlockHash& hash);
  const Record* find_record(const BlockHash& hash) const;
  Status check_stateless(const Block& block) const;
  Status check_contextual(const Block& block, const Record& parent) const;

  /// Connects `rec`'s block on top of the current state. On failure the
  /// state is left untouched and the record is marked invalid.
  Status connect_block(Record& rec);

  /// Serial reference implementations of the stateful phase (one per
  /// ledger model). These define the observable behavior; the sharded
  /// variants below must be byte-identical to them.
  Status connect_utxo(Record& rec, const BlockVerdicts& verdicts);
  Status connect_account(Record& rec, const BlockVerdicts& verdicts);

  /// Sharded stateful apply (parallel_state). Returns the connect Status
  /// when the block was handled by the conflict-group pipeline, or
  /// std::nullopt when it must take the serial reference path instead —
  /// either ineligible (fewer than two payments) or demoted. Batch, group
  /// and demotion counters are recorded here from the partition alone, on
  /// the simulation thread, so they are worker-count-independent.
  std::optional<Status> connect_utxo_sharded(Record& rec,
                                             const BlockVerdicts& verdicts);
  std::optional<Status> connect_account_sharded(Record& rec,
                                                const BlockVerdicts& verdicts);

  void disconnect_tip();

  /// Storage write-through (no-ops without an attached store). Block
  /// records are appended once, when the block enters the index;
  /// connect/disconnect mirror the chainstate into the state backend on
  /// the simulation thread at the commit point.
  void persist_block(const Record& rec);
  void persist_connect(const Record& rec);
  void persist_disconnect(const Record& rec);

  /// Batch-verifies the block's signatures across the verify pool, staging
  /// successes in the sigcache so the serial validation below is all hits.
  /// Purely a prefetch: failures are left for the serial path to diagnose
  /// in block order, so determinism and error reporting are untouched.
  void prefetch_signatures(const Block& block) const;

  /// Parallel-validation collect/shard/join. On the simulation thread:
  /// memoizes every sighash and probes the sigcache in block order (so
  /// digest caches are never raced and hit/miss accounting matches the
  /// serial path on valid blocks). Workers then run only pure functions
  /// (crypto::verify, account_of) into pre-sized verdict slots; the join
  /// inserts fresh successes into the sigcache in block order.
  BlockVerdicts compute_verdicts(const Block& block) const;

  /// Attempts to make `candidate` the active tip (it must be heavier).
  /// Returns the reorg depth, or an error if its branch proved invalid.
  Result<std::uint32_t> adopt_branch(const BlockHash& candidate);

  void process_orphans(const BlockHash& parent);

  ChainParams params_;
  GasSchedule gas_;

  std::unordered_map<BlockHash, Record> index_;
  std::vector<BlockHash> active_;  // height -> hash
  std::unordered_map<BlockHash, std::vector<Block>> orphans_;  // by parent
  std::unordered_map<TxId, BlockHash> tx_index_;  // active-chain txs only

  UtxoSet utxo_;
  WorldState state_;
  StateDB state_db_;

  std::uint32_t finalized_height_ = 0;
  std::uint32_t pruned_below_ = 0;  // bodies pruned strictly below height
  ForkStats fork_stats_;

  std::vector<std::function<void(const Block&)>> connect_hooks_;
  std::vector<std::function<void(const Block&)>> disconnect_hooks_;
  std::function<void(std::uint32_t, std::uint32_t)> reorg_hook_;
  std::function<void(const Block&)> side_chain_hook_;

  std::shared_ptr<storage::LedgerStore> store_;

  std::shared_ptr<crypto::SignatureCache> sigcache_;
  std::shared_ptr<support::ThreadPool> verify_pool_;
  bool parallel_validation_ = false;
  bool parallel_state_ = false;

  obs::Histogram* profile_connect_ = nullptr;
  obs::Histogram* profile_prefetch_ = nullptr;
  mutable obs::ParallelValidationMetrics pv_;
  mutable obs::ParallelStateMetrics ps_;
};

/// Builds the deterministic genesis block for a spec (shared by all nodes).
Block make_genesis_block(const ChainParams& params, const GenesisSpec& spec);

}  // namespace dlt::chain
