// UTXO transactions (Bitcoin model, paper §II-A).
//
// A transaction spends previously created outputs (inputs reference them by
// txid + index and carry a signature over the transaction) and creates new
// outputs locked to an account. The coinbase transaction has no inputs and
// mints the block reward + fees.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/params.hpp"
#include "crypto/digest_cache.hpp"
#include "crypto/keys.hpp"
#include "support/bytes.hpp"
#include "support/serialize.hpp"

namespace dlt::chain {

using TxId = Hash256;

struct Outpoint {
  TxId txid;
  std::uint32_t index = 0;
  auto operator<=>(const Outpoint&) const = default;
};

struct TxOut {
  Amount value = 0;
  crypto::AccountId owner;  // pay-to-account-hash
  auto operator<=>(const TxOut&) const = default;
};

struct TxIn {
  Outpoint prevout;
  std::uint64_t pubkey = 0;        // key whose account must own prevout
  crypto::Signature signature{};   // over the transaction sighash
};

class UtxoTransaction {
 public:
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t lock_height = 0;  // not spendable in blocks below this

  bool is_coinbase() const { return inputs.empty(); }

  /// Canonical serialization; its double-SHA is the txid.
  Bytes serialize() const;
  std::size_t serialized_size() const;

  /// Memoized (crypto::DigestCache): hashed once, then served from cache
  /// until invalidate_digests(). Mutating fields directly after calling
  /// id()/sighash() requires an explicit invalidate_digests().
  TxId id() const;

  /// Digest each input signs: the tx with all signatures zeroed. Memoized.
  Hash256 sighash() const;

  /// Drops the memoized id and sighash. sign_all() handles its own
  /// invalidation (signatures change the id but not the sighash).
  void invalidate_digests() {
    id_memo_.invalidate();
    sighash_memo_.invalidate();
  }

  /// Signs every input with the corresponding keypair (one per input).
  void sign_all(const std::vector<crypto::KeyPair>& keys, Rng& rng);

  /// Constructs the miner's coinbase paying `reward` to `to`. `height`
  /// makes coinbases at different heights distinct (BIP-34's fix).
  static UtxoTransaction coinbase(const crypto::AccountId& to, Amount reward,
                                  std::uint32_t height);

  Amount total_output() const;

 private:
  crypto::DigestCache id_memo_;
  crypto::DigestCache sighash_memo_;
};

}  // namespace dlt::chain

namespace std {
template <>
struct hash<dlt::chain::Outpoint> {
  size_t operator()(const dlt::chain::Outpoint& o) const noexcept {
    return std::hash<dlt::Hash256>{}(o.txid) ^ (o.index * 0x9e3779b9u);
  }
};
}  // namespace std
