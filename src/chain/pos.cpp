#include "chain/pos.hpp"

#include <cassert>

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::chain {

void ValidatorSet::deposit(const crypto::AccountId& validator,
                           std::uint64_t pubkey, Amount stake) {
  Entry& e = validators_[validator];
  e.stake += stake;
  e.pubkey = pubkey;
  total_ += stake;
}

Status ValidatorSet::withdraw(const crypto::AccountId& validator) {
  auto it = validators_.find(validator);
  if (it == validators_.end()) return make_error("unknown-validator");
  total_ -= it->second.stake;
  validators_.erase(it);
  return Status::success();
}

Amount ValidatorSet::slash(const crypto::AccountId& validator) {
  auto it = validators_.find(validator);
  if (it == validators_.end()) return 0;
  const Amount burned = it->second.stake;
  total_ -= burned;
  slashed_ += burned;
  validators_.erase(it);
  return burned;
}

Amount ValidatorSet::stake_of(const crypto::AccountId& validator) const {
  auto it = validators_.find(validator);
  return it == validators_.end() ? 0 : it->second.stake;
}

std::optional<std::uint64_t> ValidatorSet::pubkey_of(
    const crypto::AccountId& validator) const {
  auto it = validators_.find(validator);
  if (it == validators_.end()) return std::nullopt;
  return it->second.pubkey;
}

Result<crypto::AccountId> ValidatorSet::proposer_for_slot(
    const Hash256& seed, std::uint64_t slot) const {
  if (total_ == 0) return make_error("no-stake", "empty validator set");
  Writer w;
  w.fixed(seed);
  w.u64(slot);
  const Hash256 h = crypto::tagged_hash(
      "dlt/pos-proposer", ByteView{w.bytes().data(), w.size()});
  const Amount ticket = crypto::hash_prefix_u64(h) % total_;

  Amount acc = 0;
  for (const auto& [validator, entry] : validators_) {
    acc += entry.stake;
    if (ticket < acc) return validator;
  }
  assert(false && "stake accounting out of sync");
  return validators_.rbegin()->first;
}

std::vector<crypto::AccountId> ValidatorSet::members() const {
  std::vector<crypto::AccountId> out;
  out.reserve(validators_.size());
  for (const auto& [validator, entry] : validators_) out.push_back(validator);
  return out;
}

Hash256 CheckpointVote::sighash() const {
  Writer w;
  w.fixed(validator);
  w.u64(source_epoch);
  w.fixed(source_hash);
  w.u64(target_epoch);
  w.fixed(target_hash);
  return crypto::tagged_hash("dlt/ffg-vote",
                             ByteView{w.bytes().data(), w.size()});
}

void CheckpointVote::sign(const crypto::KeyPair& key, Rng& rng) {
  validator = key.account_id();
  pubkey = key.public_key();
  signature = key.sign(sighash().view(), rng);
}

FinalityGadget::FinalityGadget(const ChainParams& params,
                               ValidatorSet& validators, Hash256 genesis_hash)
    : params_(params), validators_(validators) {
  // Epoch 0 (genesis) is justified and final by definition.
  justified_[0].push_back(genesis_hash);
  last_justified_hash_ = genesis_hash;
  last_finalized_hash_ = genesis_hash;
}

std::optional<Error> FinalityGadget::check_slashable(
    const CheckpointVote& vote) const {
  auto it = vote_history_.find(vote.validator);
  if (it == vote_history_.end()) return std::nullopt;
  for (const CheckpointVote& prior : it->second) {
    // Double vote: distinct votes with the same target epoch.
    if (prior.target_epoch == vote.target_epoch &&
        prior.target_hash != vote.target_hash)
      return make_error("slash-double-vote");
    // Surround vote: one vote's span strictly contains the other's.
    const bool new_surrounds_old = vote.source_epoch < prior.source_epoch &&
                                   prior.target_epoch < vote.target_epoch;
    const bool old_surrounds_new = prior.source_epoch < vote.source_epoch &&
                                   vote.target_epoch < prior.target_epoch;
    if (new_surrounds_old || old_surrounds_new)
      return make_error("slash-surround-vote");
  }
  return std::nullopt;
}

Result<VoteOutcome> FinalityGadget::process_vote(const CheckpointVote& vote) {
  VoteOutcome outcome;

  auto pubkey = validators_.pubkey_of(vote.validator);
  if (!pubkey) return make_error("unknown-validator");
  if (*pubkey != vote.pubkey || crypto::account_of(vote.pubkey) != vote.validator)
    return make_error("pubkey-mismatch");
  if (!crypto::verify(vote.pubkey, vote.sighash().view(), vote.signature))
    return make_error("bad-signature");
  if (vote.target_epoch <= vote.source_epoch)
    return make_error("bad-link", "target epoch must exceed source");
  if (!is_justified(vote.source_epoch, vote.source_hash))
    return make_error("unjustified-source");

  if (auto offence = check_slashable(vote)) {
    const Amount stake = validators_.stake_of(vote.validator);
    validators_.slash(vote.validator);
    // Burned stake stops counting toward any pending link.
    for (auto& [key, voters] : link_voters_) {
      for (auto it = voters.begin(); it != voters.end(); ++it) {
        if (*it == vote.validator) {
          link_stake_[key] -= stake;
          voters.erase(it);
          break;
        }
      }
    }
    ++slashings_;
    outcome.slashed = vote.validator;
    return outcome;  // offending vote is discarded, stake burned
  }

  vote_history_[vote.validator].push_back(vote);
  ++votes_processed_;
  outcome.counted = true;

  const LinkKey key{vote.source_epoch, vote.target_epoch, vote.source_hash,
                    vote.target_hash};
  auto& voters = link_voters_[key];
  for (const auto& v : voters)
    if (v == vote.validator) return outcome;  // duplicate identical vote
  voters.push_back(vote.validator);
  link_stake_[key] += validators_.stake_of(vote.validator);

  const double quorum =
      params_.checkpoint_quorum * static_cast<double>(validators_.total_stake());
  if (static_cast<double>(link_stake_[key]) >= quorum &&
      !is_justified(vote.target_epoch, vote.target_hash)) {
    justified_[vote.target_epoch].push_back(vote.target_hash);
    outcome.justified_target = true;
    if (vote.target_epoch > last_justified_epoch_) {
      last_justified_epoch_ = vote.target_epoch;
      last_justified_hash_ = vote.target_hash;
    }
    // Finality: a supermajority link between *consecutive* epochs
    // finalizes the source checkpoint.
    if (vote.target_epoch == vote.source_epoch + 1 &&
        vote.source_epoch >= last_finalized_epoch_) {
      last_finalized_epoch_ = vote.source_epoch;
      last_finalized_hash_ = vote.source_hash;
      outcome.finalized_source = true;
    }
  }
  return outcome;
}

bool FinalityGadget::is_justified(std::uint64_t epoch,
                                  const Hash256& hash) const {
  auto it = justified_.find(epoch);
  if (it == justified_.end()) return false;
  for (const Hash256& h : it->second)
    if (h == hash) return true;
  return false;
}

}  // namespace dlt::chain
