// Account-model transactions with gas (Ethereum model, paper §II-A, §VI-A).
//
// "Gas is the unit used to measure the fees required for a particular
// computation... gas limit defines the maximum amount of gas all
// transactions in the whole block combined are allowed to consume."
#pragma once

#include <cstdint>

#include "chain/params.hpp"
#include "crypto/digest_cache.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "support/bytes.hpp"

namespace dlt::chain {

/// Gas schedule (simplified Ethereum yellow-paper constants).
struct GasSchedule {
  std::uint64_t tx_base = 21'000;        // intrinsic cost of any tx
  std::uint64_t per_data_byte = 68;      // calldata cost
  std::uint64_t contract_creation = 32'000;
};

class AccountTransaction {
 public:
  crypto::AccountId from;   // derived from pubkey; must match
  crypto::AccountId to;     // zero => contract creation
  std::uint64_t nonce = 0;  // must equal sender's account nonce
  Amount value = 0;
  std::uint64_t gas_limit = 21'000;
  Amount gas_price = 1;           // fee per gas unit
  std::uint32_t data_size = 0;    // modelled calldata length (bytes)

  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  bool is_contract_creation() const { return to.is_zero(); }

  /// Gas consumed before any execution: base + calldata (+ creation).
  std::uint64_t intrinsic_gas(const GasSchedule& gs = {}) const;

  /// This simulation executes no EVM code; a transaction consumes its
  /// intrinsic gas (value transfers) -- matching the paper's throughput
  /// arithmetic where ~21k-gas transfers fill the block gas limit.
  std::uint64_t gas_used(const GasSchedule& gs = {}) const {
    return intrinsic_gas(gs);
  }

  Amount max_fee() const { return gas_limit * gas_price; }

  Bytes serialize() const;
  std::size_t serialized_size() const;

  /// Memoized (crypto::DigestCache). Mutating fields directly after a call
  /// requires an explicit invalidate_digests(); sign() invalidates itself.
  Hash256 id() const;
  Hash256 sighash() const;

  /// Drops the memoized id and sighash.
  void invalidate_digests() {
    id_memo_.invalidate();
    sighash_memo_.invalidate();
  }

  void sign(const crypto::KeyPair& key, Rng& rng);
  /// Signature valid and signer's account matches `from`. A shared
  /// crypto::SignatureCache skips the exponentiations on repeat checks.
  bool verify_signature(crypto::SignatureCache* sigcache = nullptr) const;

 private:
  crypto::DigestCache id_memo_;
  crypto::DigestCache sighash_memo_;
};

}  // namespace dlt::chain
