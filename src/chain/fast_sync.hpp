// Ethereum-style fast sync (paper §V-A).
//
// "Instead of processing the entire blockchain one link at a time and
// replaying all transactions that ever happened in history, fast syncing
// downloads the transaction receipts along the blocks, and pulls an entire
// recent state... After downloading a state which is recent enough (head of
// the chain - 1024 blocks, also called the pivot point), the process is
// paused for state sync where the Merkle state tree is downloaded from the
// pivot point. From the pivot point onward, all blocks are downloaded and
// the node continues its usual operation."
#pragma once

#include <cstdint>

#include "chain/blockchain.hpp"

namespace dlt::chain {

/// Geth's pivot offset: head - 1024.
constexpr std::uint32_t kDefaultPivotOffset = 1024;

struct SyncPlan {
  // What a freshly joining node must download and do, in bytes/ops.
  std::uint64_t header_bytes = 0;
  std::uint64_t body_bytes = 0;       // full bodies downloaded
  std::uint64_t receipt_bytes = 0;    // receipts downloaded (fast sync)
  std::uint64_t state_nodes = 0;      // trie nodes downloaded at the pivot
  std::uint64_t state_bytes = 0;
  std::uint64_t txs_replayed = 0;     // transactions re-executed locally

  std::uint32_t pivot_height = 0;

  std::uint64_t total_bytes() const {
    return header_bytes + body_bytes + receipt_bytes + state_bytes;
  }
};

/// Cost of a classic full sync: every header + every body, replaying every
/// transaction since genesis.
SyncPlan plan_full_sync(const Blockchain& source);

/// Cost of a fast sync against `source` (account-model chains): all
/// headers, receipts up to the pivot, the pivot state trie, then full
/// bodies from the pivot onward. Fails if the source pruned the pivot state.
Result<SyncPlan> plan_fast_sync(const Blockchain& source,
                                std::uint32_t pivot_offset =
                                    kDefaultPivotOffset);

/// Executes a fast sync end-to-end: "downloads" the pivot state by walking
/// the source trie, verifies it against the pivot header's state root, and
/// returns the reconstructed world state. This is the integrity check that
/// makes fast sync trustworthy despite skipping replay.
Result<WorldState> execute_fast_sync(const Blockchain& source,
                                     std::uint32_t pivot_offset =
                                         kDefaultPivotOffset);

}  // namespace dlt::chain
