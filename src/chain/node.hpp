// A full blockchain network participant: local chain replica, mempool,
// gossip handlers, and optionally a PoW miner or PoS validator
// (paper §III, §IV-A, §VI-A).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/mempool.hpp"
#include "chain/pos.hpp"
#include "net/network.hpp"
#include "obs/probe.hpp"
#include "support/stats.hpp"

namespace dlt::obs {
class LatencyTracker;
}

namespace dlt::chain {

/// Stake ledger entry shared by all nodes at startup (the "deposit
/// contract" state; paper §III-A2).
struct StakeAllocation {
  crypto::AccountId validator;
  std::uint64_t pubkey = 0;
  Amount stake = 0;
};

struct NodeConfig {
  /// PoW mining speed in hash attempts per simulated second (0 = no miner).
  double hashrate = 0.0;
  /// Solve hashcash for real when producing blocks (pairs with
  /// params.verify_pow; needs low difficulty).
  bool solve_pow = false;
  /// Coinbase / fee recipient and PoS signing identity.
  std::uint64_t wallet_seed = 1;
  /// Signature-verification cache, usually shared across the whole cluster
  /// (crypto/sigcache.hpp). Null = verify every signature from scratch.
  std::shared_ptr<crypto::SignatureCache> sigcache;
  /// Thread pool for batch verification during block connect (needs
  /// `sigcache` to stage results). Null = serial verification.
  std::shared_ptr<support::ThreadPool> verify_pool;
  /// Run the sharded parallel-validation pipeline in block connect instead
  /// of the prefetch-only reference path. Needs `verify_pool`. Either
  /// setting yields byte-identical simulation results for a given seed.
  bool parallel_validation = false;
  /// Shard the *stateful* phase of block connect by conflict groups
  /// (Blockchain::set_parallel_state). Needs `verify_pool`. Either setting
  /// yields byte-identical simulation results for a given seed.
  bool parallel_state = false;
  /// Observability hookup (cluster-owned registry + tracer). A default
  /// probe is inert; see obs/probe.hpp.
  obs::Probe probe;
  /// Cluster-owned transaction-lifecycle tracker (obs/latency.hpp); the
  /// node stamps include/confirm for engine-submitted transactions it
  /// tracks locally. Null = emit the historical tx_included/tx_confirmed
  /// trace events directly instead.
  obs::LatencyTracker* lifecycle = nullptr;
  /// Per-node persistent store (storage/ledger_store.hpp); handed to the
  /// chain via Blockchain::attach_store. Null = no write-through.
  std::shared_ptr<storage::LedgerStore> store;
  /// Mempool byte-capacity fee market (ISSUE 10): lowest-fee-rate
  /// eviction + opt-in replacement once set. 0 = unlimited (historical).
  std::uint64_t mempool_capacity_bytes = 0;
  /// Enable replace-by-fee / same-nonce replacement in the mempools.
  bool mempool_replacement = false;
};

/// Latency metrics a node records about its own submitted transactions.
struct TxTimings {
  Percentiles inclusion_latency;     // submit -> first on-chain
  Percentiles confirmation_latency;  // submit -> confirmation_depth deep
};

class ChainNode {
 public:
  ChainNode(net::Network& network, const ChainParams& params,
            const GenesisSpec& genesis, const NodeConfig& config, Rng rng,
            const std::vector<StakeAllocation>& stakes = {});

  net::NodeId id() const { return id_; }
  Blockchain& chain() { return chain_; }
  const Blockchain& chain() const { return chain_; }
  const crypto::KeyPair& wallet() const { return wallet_; }
  Rng& rng() { return rng_; }

  /// Starts the mining / proposing / voting loops.
  void start();

  /// Validates, pools and gossips a locally submitted transaction.
  Status submit_transaction(const UtxoTransaction& tx);
  Status submit_transaction(const AccountTransaction& tx);

  std::size_t mempool_size() const;
  /// Direct mempool access (admission-control wiring + tests): the
  /// cluster installs evict handlers here and benches read occupancy.
  UtxoMempool& utxo_pool() { return utxo_pool_; }
  AccountMempool& account_pool() { return account_pool_; }
  const TxTimings& timings() const { return timings_; }
  std::uint64_t blocks_mined() const { return blocks_mined_; }
  ValidatorSet& validators() { return validators_; }
  FinalityGadget* finality() { return finality_.get(); }

 private:
  void handle_message(const net::Message& msg);
  void accept_block(const Block& block, net::NodeId from);
  /// Backfill: ask `peer` for a block we are missing (orphan parents).
  void request_block(net::NodeId peer, const BlockHash& hash);
  void serve_block(net::NodeId peer, const BlockHash& hash);

  // -- PoW mining ---------------------------------------------------------
  void schedule_mining();
  void mine_block();
  Block assemble_block(double timestamp, std::uint64_t slot);

  // -- PoS proposing / voting ----------------------------------------------
  void schedule_slot();
  void run_slot(std::uint64_t slot);
  void maybe_vote_checkpoint();
  void handle_vote(const CheckpointVote& vote);
  /// Whole-block equivocation: same proposer, same slot, different blocks
  /// (paper §III-A2: "if an incorrect block is submitted, the validator's
  /// stake is burned").
  void detect_proposer_equivocation(const Block& block);

  void on_block_connected(const Block& block);
  void on_block_disconnected(const Block& block);

  net::Network& net_;
  net::NodeId id_;
  ChainParams params_;
  Blockchain chain_;
  crypto::KeyPair wallet_;
  NodeConfig config_;
  Rng rng_;

  UtxoMempool utxo_pool_;
  AccountMempool account_pool_;

  // PoS state (replicated deterministically on every node).
  ValidatorSet validators_;
  std::unique_ptr<FinalityGadget> finality_;
  std::unordered_map<std::uint64_t, BlockHash> seen_slot_blocks_;
  std::uint64_t last_voted_epoch_ = 0;

  sim::EventId mining_event_ = sim::kInvalidEvent;
  std::uint64_t blocks_mined_ = 0;

  // Local transaction latency tracking.
  std::unordered_map<Hash256, double> submit_time_;
  std::unordered_map<Hash256, double> include_time_;
  TxTimings timings_;

  // Cached registry metrics (null when no probe is attached).
  obs::Counter* obs_blocks_mined_ = nullptr;
  obs::Counter* obs_blocks_received_ = nullptr;
  obs::Counter* obs_blocks_rejected_ = nullptr;
  obs::Counter* obs_forks_opened_ = nullptr;
  obs::Counter* obs_reorgs_ = nullptr;
  obs::Counter* obs_votes_cast_ = nullptr;
  obs::Counter* obs_justified_ = nullptr;
  obs::Counter* obs_finalized_ = nullptr;
  obs::Histogram* profile_pow_ = nullptr;
};

}  // namespace dlt::chain
