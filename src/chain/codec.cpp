#include "chain/codec.hpp"

#include <bit>

#include "support/serialize.hpp"

namespace dlt::chain {

namespace {

constexpr std::uint8_t kModelUtxo = 0;
constexpr std::uint8_t kModelAccount = 1;

void write_utxo_tx(Writer& w, const UtxoTransaction& tx) {
  w.varint(tx.inputs.size());
  for (const TxIn& in : tx.inputs) {
    w.fixed(in.prevout.txid);
    w.u32(in.prevout.index);
    w.u64(in.pubkey);
    w.u64(in.signature.r);
    w.u64(in.signature.s);
  }
  w.varint(tx.outputs.size());
  for (const TxOut& out : tx.outputs) {
    w.u64(out.value);
    w.fixed(out.owner);
  }
  w.u32(tx.lock_height);
}

Result<UtxoTransaction> read_utxo_tx(Reader& r) {
  UtxoTransaction tx;
  auto n_in = r.varint();
  if (!n_in) return n_in.error();
  tx.inputs.reserve(*n_in);
  for (std::uint64_t i = 0; i < *n_in; ++i) {
    TxIn in;
    auto txid = r.fixed<32>();
    if (!txid) return txid.error();
    in.prevout.txid = *txid;
    auto index = r.u32();
    if (!index) return index.error();
    in.prevout.index = *index;
    auto pubkey = r.u64();
    if (!pubkey) return pubkey.error();
    in.pubkey = *pubkey;
    auto sr = r.u64();
    if (!sr) return sr.error();
    in.signature.r = *sr;
    auto ss = r.u64();
    if (!ss) return ss.error();
    in.signature.s = *ss;
    tx.inputs.push_back(in);
  }
  auto n_out = r.varint();
  if (!n_out) return n_out.error();
  tx.outputs.reserve(*n_out);
  for (std::uint64_t i = 0; i < *n_out; ++i) {
    TxOut out;
    auto value = r.u64();
    if (!value) return value.error();
    out.value = *value;
    auto owner = r.fixed<32>();
    if (!owner) return owner.error();
    out.owner = *owner;
    tx.outputs.push_back(out);
  }
  auto lock = r.u32();
  if (!lock) return lock.error();
  tx.lock_height = *lock;
  return tx;
}

void write_account_tx(Writer& w, const AccountTransaction& tx) {
  w.fixed(tx.from);
  w.fixed(tx.to);
  w.u64(tx.nonce);
  w.u64(tx.value);
  w.u64(tx.gas_limit);
  w.u64(tx.gas_price);
  w.u32(tx.data_size);
  w.u64(tx.pubkey);
  w.u64(tx.signature.r);
  w.u64(tx.signature.s);
}

Result<AccountTransaction> read_account_tx(Reader& r) {
  AccountTransaction tx;
  auto from = r.fixed<32>();
  if (!from) return from.error();
  tx.from = *from;
  auto to = r.fixed<32>();
  if (!to) return to.error();
  tx.to = *to;
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  tx.nonce = *nonce;
  auto value = r.u64();
  if (!value) return value.error();
  tx.value = *value;
  auto gas_limit = r.u64();
  if (!gas_limit) return gas_limit.error();
  tx.gas_limit = *gas_limit;
  auto gas_price = r.u64();
  if (!gas_price) return gas_price.error();
  tx.gas_price = *gas_price;
  auto data_size = r.u32();
  if (!data_size) return data_size.error();
  tx.data_size = *data_size;
  auto pubkey = r.u64();
  if (!pubkey) return pubkey.error();
  tx.pubkey = *pubkey;
  auto sr = r.u64();
  if (!sr) return sr.error();
  tx.signature.r = *sr;
  auto ss = r.u64();
  if (!ss) return ss.error();
  tx.signature.s = *ss;
  return tx;
}

}  // namespace

Bytes encode_header_record(const BlockHeader& header) {
  Writer w;
  w.u32(header.height);
  w.fixed(header.parent);
  w.fixed(header.merkle_root);
  w.fixed(header.state_root);
  w.u64(std::bit_cast<std::uint64_t>(header.timestamp));
  w.u64(std::bit_cast<std::uint64_t>(header.difficulty));
  w.u64(header.nonce);
  w.fixed(header.proposer);
  w.u64(header.slot);
  return std::move(w).take();
}

Result<BlockHeader> decode_header_record(ByteView raw) {
  Reader r(raw);
  BlockHeader h;
  auto height = r.u32();
  if (!height) return height.error();
  h.height = *height;
  auto parent = r.fixed<32>();
  if (!parent) return parent.error();
  h.parent = *parent;
  auto merkle = r.fixed<32>();
  if (!merkle) return merkle.error();
  h.merkle_root = *merkle;
  auto state_root = r.fixed<32>();
  if (!state_root) return state_root.error();
  h.state_root = *state_root;
  auto ts = r.u64();
  if (!ts) return ts.error();
  h.timestamp = std::bit_cast<double>(*ts);
  auto diff = r.u64();
  if (!diff) return diff.error();
  h.difficulty = std::bit_cast<double>(*diff);
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  h.nonce = *nonce;
  auto proposer = r.fixed<32>();
  if (!proposer) return proposer.error();
  h.proposer = *proposer;
  auto slot = r.u64();
  if (!slot) return slot.error();
  h.slot = *slot;
  if (!r.done()) return make_error("header-record-trailing-bytes");
  return h;
}

Bytes encode_body_record(const Block& block) {
  Writer w;
  if (block.is_utxo()) {
    w.u8(kModelUtxo);
    const auto& txs = block.utxo_txs();
    w.varint(txs.size());
    for (const auto& tx : txs) write_utxo_tx(w, tx);
  } else {
    w.u8(kModelAccount);
    const auto& txs = block.account_txs();
    w.varint(txs.size());
    for (const auto& tx : txs) write_account_tx(w, tx);
  }
  return std::move(w).take();
}

Status decode_body_record(ByteView raw, Block& block) {
  Reader r(raw);
  auto model = r.u8();
  if (!model) return model.error();
  auto count = r.varint();
  if (!count) return count.error();
  if (*model == kModelUtxo) {
    UtxoTxList txs;
    txs.reserve(*count);
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto tx = read_utxo_tx(r);
      if (!tx) return tx.error();
      txs.push_back(std::move(*tx));
    }
    block.txs = std::move(txs);
  } else if (*model == kModelAccount) {
    AccountTxList txs;
    txs.reserve(*count);
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto tx = read_account_tx(r);
      if (!tx) return tx.error();
      txs.push_back(std::move(*tx));
    }
    block.txs = std::move(txs);
  } else {
    return make_error("body-record-bad-model");
  }
  if (!r.done()) return make_error("body-record-trailing-bytes");
  return Status::success();
}

Result<Block> decode_block_records(ByteView header_raw, ByteView body_raw) {
  auto header = decode_header_record(header_raw);
  if (!header) return header.error();
  Block block;
  block.header = *header;
  Status st = decode_body_record(body_raw, block);
  if (!st.ok()) return st.error();
  return block;
}

}  // namespace dlt::chain
