#include "chain/utxo.hpp"

#include <cassert>
#include <unordered_set>

namespace dlt::chain {

std::optional<TxOut> UtxoSet::get(const Outpoint& op) const {
  auto it = map_.find(op);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Result<Amount> UtxoSet::check_transaction(
    const UtxoTransaction& tx, std::uint32_t height,
    crypto::SignatureCache* sigcache, const TxVerdict* verdict) const {
  return check_utxo_transaction(
      [this](const Outpoint& op) { return get(op); }, tx, height, sigcache,
      verdict);
}

TxUndo UtxoSet::apply_transaction(const UtxoTransaction& tx) {
  TxUndo undo;
  for (const TxIn& in : tx.inputs) {
    auto it = map_.find(in.prevout);
    assert(it != map_.end() && "apply of unchecked transaction");
    undo.spent.emplace_back(it->first, it->second);
    drop_index(it->first, it->second.owner);
    map_.erase(it);
  }
  const TxId txid = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const Outpoint op{txid, i};
    map_.emplace(op, tx.outputs[i]);
    by_owner_[tx.outputs[i].owner].insert(op);
    undo.created.push_back(op);
  }
  return undo;
}

void UtxoSet::revert_transaction(const TxUndo& undo) {
  for (const Outpoint& op : undo.created) {
    auto it = map_.find(op);
    if (it != map_.end()) {
      drop_index(op, it->second.owner);
      map_.erase(it);
    }
  }
  for (const auto& [op, out] : undo.spent) {
    map_.emplace(op, out);
    by_owner_[out.owner].insert(op);
  }
}

void UtxoSet::drop_index(const Outpoint& op, const crypto::AccountId& owner) {
  auto idx = by_owner_.find(owner);
  if (idx == by_owner_.end()) return;
  idx->second.erase(op);
  if (idx->second.empty()) by_owner_.erase(idx);
}

Amount UtxoSet::total_value() const {
  Amount sum = 0;
  for (const auto& [op, out] : map_) sum += out.value;
  return sum;
}

std::vector<std::pair<Outpoint, TxOut>> UtxoSet::find_owned(
    const crypto::AccountId& owner) const {
  std::vector<std::pair<Outpoint, TxOut>> out;
  auto idx = by_owner_.find(owner);
  if (idx == by_owner_.end()) return out;
  out.reserve(idx->second.size());
  for (const Outpoint& op : idx->second) {
    auto it = map_.find(op);
    assert(it != map_.end());
    out.emplace_back(op, it->second);
  }
  return out;
}

std::size_t UtxoSet::stored_bytes() const {
  // outpoint (36) + value (8) + owner (32) per entry.
  return map_.size() * 76;
}

}  // namespace dlt::chain
