#include "chain/utxo.hpp"

#include <cassert>
#include <unordered_set>

namespace dlt::chain {

std::optional<TxOut> UtxoSet::get(const Outpoint& op) const {
  auto it = map_.find(op);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Result<Amount> UtxoSet::check_transaction(
    const UtxoTransaction& tx, std::uint32_t height,
    crypto::SignatureCache* sigcache, const TxVerdict* verdict) const {
  if (tx.lock_height > height)
    return make_error("premature", "lock_height above current height");
  if (tx.is_coinbase())
    return make_error("unexpected-coinbase",
                      "coinbase checked at block level");
  if (tx.outputs.empty()) return make_error("no-outputs");

  const Hash256 digest = tx.sighash();
  Amount in_sum = 0;
  // Duplicate-input detection: the common case is a handful of inputs, so
  // scan the preceding ones linearly (no allocation). Fall back to a hash
  // set only for wide fan-in, keeping adversarial many-input txs O(n).
  constexpr std::size_t kLinearScanMax = 16;
  std::unordered_set<Outpoint> seen;
  if (tx.inputs.size() > kLinearScanMax) seen.reserve(tx.inputs.size());
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    const TxIn& in = tx.inputs[i];
    if (tx.inputs.size() <= kLinearScanMax) {
      for (std::size_t j = 0; j < i; ++j)
        if (tx.inputs[j].prevout == in.prevout)
          return make_error("double-spend", "duplicate input within tx");
    } else if (!seen.insert(in.prevout).second) {
      return make_error("double-spend", "duplicate input within tx");
    }

    const auto prev = get(in.prevout);
    if (!prev)
      return make_error("missing-utxo", "input not in UTXO set");
    const InputVerdict* iv =
        verdict && i < verdict->inputs.size() ? &verdict->inputs[i] : nullptr;
    const crypto::AccountId signer =
        iv ? iv->signer : crypto::account_of(in.pubkey);
    if (signer != prev->owner)
      return make_error("wrong-owner", "pubkey does not own prevout");
    const bool sig_ok =
        iv ? iv->sig_ok
           : crypto::verify_cached(sigcache, in.pubkey, digest, in.signature);
    if (!sig_ok) return make_error("bad-signature");
    in_sum += prev->value;
  }

  const Amount out_sum = tx.total_output();
  if (out_sum > in_sum)
    return make_error("inflation", "outputs exceed inputs");
  return in_sum - out_sum;  // fee
}

TxUndo UtxoSet::apply_transaction(const UtxoTransaction& tx) {
  TxUndo undo;
  for (const TxIn& in : tx.inputs) {
    auto it = map_.find(in.prevout);
    assert(it != map_.end() && "apply of unchecked transaction");
    undo.spent.emplace_back(it->first, it->second);
    drop_index(it->first, it->second.owner);
    map_.erase(it);
  }
  const TxId txid = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
    const Outpoint op{txid, i};
    map_.emplace(op, tx.outputs[i]);
    by_owner_[tx.outputs[i].owner].insert(op);
    undo.created.push_back(op);
  }
  return undo;
}

void UtxoSet::revert_transaction(const TxUndo& undo) {
  for (const Outpoint& op : undo.created) {
    auto it = map_.find(op);
    if (it != map_.end()) {
      drop_index(op, it->second.owner);
      map_.erase(it);
    }
  }
  for (const auto& [op, out] : undo.spent) {
    map_.emplace(op, out);
    by_owner_[out.owner].insert(op);
  }
}

void UtxoSet::drop_index(const Outpoint& op, const crypto::AccountId& owner) {
  auto idx = by_owner_.find(owner);
  if (idx == by_owner_.end()) return;
  idx->second.erase(op);
  if (idx->second.empty()) by_owner_.erase(idx);
}

Amount UtxoSet::total_value() const {
  Amount sum = 0;
  for (const auto& [op, out] : map_) sum += out.value;
  return sum;
}

std::vector<std::pair<Outpoint, TxOut>> UtxoSet::find_owned(
    const crypto::AccountId& owner) const {
  std::vector<std::pair<Outpoint, TxOut>> out;
  auto idx = by_owner_.find(owner);
  if (idx == by_owner_.end()) return out;
  out.reserve(idx->second.size());
  for (const Outpoint& op : idx->second) {
    auto it = map_.find(op);
    assert(it != map_.end());
    out.emplace_back(op, it->second);
  }
  return out;
}

std::size_t UtxoSet::stored_bytes() const {
  // outpoint (36) + value (8) + owner (32) per entry.
  return map_.size() * 76;
}

}  // namespace dlt::chain
