#include "chain/difficulty.hpp"

#include <algorithm>

namespace dlt::chain {

double retarget_difficulty(const ChainParams& params, double old_difficulty,
                           double actual_span, std::uint32_t intervals) {
  if (intervals == 0) return old_difficulty;
  const double ideal_span =
      params.block_interval * static_cast<double>(intervals);
  // Guard degenerate spans (identical timestamps in fast simulations).
  const double span = std::max(actual_span, ideal_span * 1e-6);
  double ratio = ideal_span / span;  // blocks too fast -> ratio > 1
  ratio = std::clamp(ratio, 1.0 / params.retarget_clamp,
                     params.retarget_clamp);
  const double next = old_difficulty * ratio;
  return std::max(next, 1.0);
}

}  // namespace dlt::chain
