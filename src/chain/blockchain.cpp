#include "chain/blockchain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>

#include "obs/profile.hpp"
#include "support/hex.hpp"
#include "support/log.hpp"

namespace dlt::chain {

Block make_genesis_block(const ChainParams& params, const GenesisSpec& spec) {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.timestamp = spec.timestamp;
  genesis.header.difficulty = params.initial_difficulty;

  if (params.tx_model == TxModel::kUtxo) {
    // The initial state is one mint transaction paying every allocation.
    UtxoTransaction mint;
    for (const auto& [account, amount] : spec.allocations)
      mint.outputs.push_back(TxOut{amount, account});
    genesis.txs = UtxoTxList{std::move(mint)};
  } else {
    genesis.txs = AccountTxList{};
    WorldState state;
    for (const auto& [account, amount] : spec.allocations)
      state = state.credit(account, amount);
    genesis.header.state_root = state.root();
  }
  genesis.header.merkle_root = genesis.compute_merkle_root();
  return genesis;
}

Blockchain::Blockchain(ChainParams params, GenesisSpec genesis)
    : params_(std::move(params)) {
  Block g = make_genesis_block(params_, genesis);
  const BlockHash gh = g.hash();

  Record rec;
  rec.block = g;
  rec.hash = gh;
  rec.total_work = block_work(g.header.difficulty);

  if (params_.tx_model == TxModel::kUtxo) {
    for (const auto& tx : rec.block.utxo_txs()) {
      tx_index_[tx.id()] = gh;
      rec.undo.txs.push_back(utxo_.apply_transaction(tx));
    }
  } else {
    WorldState state;
    for (const auto& [account, amount] : genesis.allocations)
      state = state.credit(account, amount);
    state_ = state;
    state_db_.put(state.root(), state);
  }

  index_.emplace(gh, std::move(rec));
  active_.push_back(gh);
}

Blockchain::Record* Blockchain::find_record(const BlockHash& hash) {
  auto it = index_.find(hash);
  return it == index_.end() ? nullptr : &it->second;
}

const Blockchain::Record* Blockchain::find_record(
    const BlockHash& hash) const {
  auto it = index_.find(hash);
  return it == index_.end() ? nullptr : &it->second;
}

const Block* Blockchain::find(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec ? &rec->block : nullptr;
}

bool Blockchain::body_pruned(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec != nullptr && rec->body_pruned;
}

const Block* Blockchain::at_height(std::uint32_t h) const {
  if (h >= active_.size()) return nullptr;
  return find(active_[h]);
}

bool Blockchain::on_active_chain(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  if (!rec) return false;
  const std::uint32_t h = rec->block.header.height;
  return h < active_.size() && active_[h] == hash;
}

double Blockchain::total_work() const {
  return find_record(active_.back())->total_work;
}

double Blockchain::total_work_of(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec ? rec->total_work : 0.0;
}

std::uint32_t Blockchain::confirmations(const TxId& txid) const {
  auto h = tx_height(txid);
  if (!h) return 0;
  return height() - *h + 1;
}

std::optional<std::uint32_t> Blockchain::tx_height(const TxId& txid) const {
  auto it = tx_index_.find(txid);
  if (it == tx_index_.end()) return std::nullopt;
  const Record* rec = find_record(it->second);
  if (!rec) return std::nullopt;
  const std::uint32_t h = rec->block.header.height;
  if (h >= active_.size() || active_[h] != it->second) return std::nullopt;
  return h;
}

double Blockchain::next_difficulty(const BlockHash& parent_hash) const {
  const Record* parent = find_record(parent_hash);
  assert(parent && "next_difficulty of unknown parent");
  if (params_.consensus == ConsensusKind::kProofOfStake) return 1.0;

  const std::uint32_t h_next = parent->block.header.height + 1;
  const std::uint32_t window = params_.retarget_window;
  if (window == 0 || h_next % window != 0)
    return parent->block.header.difficulty;

  std::uint32_t anc_height;
  std::uint32_t intervals;
  if (window == 1) {
    // Per-block adjustment (Ethereum-style): last observed interval.
    if (parent->block.header.height < 1)
      return parent->block.header.difficulty;
    anc_height = parent->block.header.height - 1;
    intervals = 1;
  } else {
    if (h_next < window) return parent->block.header.difficulty;
    anc_height = h_next - window;
    intervals = window - 1;
    if (intervals == 0) return parent->block.header.difficulty;
  }

  const Record* anc = parent;
  while (anc->block.header.height > anc_height) {
    anc = find_record(anc->block.header.parent);
    assert(anc && "broken parent linkage");
  }
  const double span =
      parent->block.header.timestamp - anc->block.header.timestamp;
  return retarget_difficulty(params_, parent->block.header.difficulty, span,
                             intervals);
}

Status Blockchain::check_stateless(const Block& block) const {
  const bool expects_utxo = params_.tx_model == TxModel::kUtxo;
  if (block.is_utxo() != expects_utxo)
    return make_error("wrong-tx-model");
  if (block.header.parent.is_zero())
    return make_error("duplicate-genesis", "non-genesis with zero parent");
  if (block.compute_merkle_root() != block.header.merkle_root)
    return make_error("bad-merkle-root");
  if (params_.max_block_bytes > 0 &&
      block.serialized_size() > params_.max_block_bytes)
    return make_error("oversize-block");
  if (!block.is_utxo() && params_.block_gas_limit > 0 &&
      block.total_gas() > params_.block_gas_limit)
    return make_error("gas-limit-exceeded");
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    if (txs.empty() || !txs.front().is_coinbase())
      return make_error("missing-coinbase");
    for (std::size_t i = 1; i < txs.size(); ++i)
      if (txs[i].is_coinbase())
        return make_error("multiple-coinbase");
  }
  return Status::success();
}

Status Blockchain::check_contextual(const Block& block,
                                    const Record& parent) const {
  if (block.header.height != parent.block.header.height + 1)
    return make_error("bad-height");
  if (block.header.timestamp + 1e-9 < parent.block.header.timestamp)
    return make_error("timestamp-regression");
  const double expected = next_difficulty(parent.hash);
  if (std::abs(block.header.difficulty - expected) >
      1e-9 * std::max(1.0, expected))
    return make_error("bad-difficulty");
  if (params_.verify_pow &&
      params_.consensus == ConsensusKind::kProofOfWork &&
      !meets_target(block.header.pow_digest(), block.header.difficulty))
    return make_error("bad-pow", "hash does not meet target");
  return Status::success();
}

void Blockchain::set_metrics(obs::MetricsRegistry* metrics) {
  profile_connect_ =
      metrics ? &metrics->histogram("profile.connect_block_us") : nullptr;
  profile_prefetch_ =
      metrics ? &metrics->histogram("profile.prefetch_us") : nullptr;
  pv_.wire(obs::Probe{metrics, nullptr, {}});
}

void Blockchain::prefetch_signatures(const Block& block) const {
  if (!verify_pool_ || !sigcache_) return;
  obs::ProfileTimer timer(profile_prefetch_);

  // Collect the independent (pubkey, sighash, signature) checks in block
  // order. Sighashes are memoized here, on the simulation thread, so the
  // workers below never race on a DigestCache.
  struct Check {
    std::uint64_t pubkey;
    Hash256 sighash;
    crypto::Signature sig;
  };
  std::vector<Check> checks;
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    for (std::size_t i = 1; i < txs.size(); ++i) {
      const Hash256 digest = txs[i].sighash();
      for (const TxIn& in : txs[i].inputs)
        if (!sigcache_->peek(in.pubkey, digest, in.signature))
          checks.push_back(Check{in.pubkey, digest, in.signature});
    }
  } else {
    for (const auto& tx : block.account_txs())
      if (!sigcache_->peek(tx.pubkey, tx.sighash(), tx.signature))
        checks.push_back(Check{tx.pubkey, tx.sighash(), tx.signature});
  }
  if (checks.empty()) return;

  // Verify misses in parallel; each worker writes only its own slot.
  std::vector<std::uint8_t> ok(checks.size(), 0);
  verify_pool_->parallel_for(checks.size(), [&](std::size_t i) {
    const Check& c = checks[i];
    ok[i] = crypto::verify(c.pubkey, c.sighash.view(), c.sig) ? 1 : 0;
  });

  // Join in index order: stage successes in the cache; failures fall
  // through to the serial path, which reports them exactly as before.
  for (std::size_t i = 0; i < checks.size(); ++i)
    if (ok[i])
      sigcache_->insert(checks[i].pubkey, checks[i].sighash, checks[i].sig);
}

BlockVerdicts Blockchain::compute_verdicts(const Block& block) const {
  BlockVerdicts verdicts;
  // Collect: one job per signed input, in block order, on the simulation
  // thread. Sighash memoization and sigcache probes happen here so workers
  // only ever touch the immutable Job and their own verdict slot.
  struct Job {
    std::uint32_t tx;
    std::uint32_t input;
    std::uint64_t pubkey;
    Hash256 sighash;
    crypto::Signature sig;
    bool cached;  // sigcache hit; worker skips the verify
  };
  std::vector<Job> jobs;
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    verdicts.txs.resize(txs.size());
    for (std::size_t i = 1; i < txs.size(); ++i) {
      const Hash256 digest = txs[i].sighash();
      verdicts.txs[i].inputs.resize(txs[i].inputs.size());
      for (std::size_t j = 0; j < txs[i].inputs.size(); ++j) {
        const TxIn& in = txs[i].inputs[j];
        const bool cached =
            sigcache_ && sigcache_->contains(in.pubkey, digest, in.signature);
        jobs.push_back(Job{static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j), in.pubkey, digest,
                           in.signature, cached});
      }
    }
  } else {
    const auto& txs = block.account_txs();
    verdicts.txs.resize(txs.size());
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const AccountTransaction& tx = txs[i];
      const Hash256 digest = tx.sighash();
      verdicts.txs[i].inputs.resize(1);
      const bool cached =
          sigcache_ && sigcache_->contains(tx.pubkey, digest, tx.signature);
      jobs.push_back(Job{static_cast<std::uint32_t>(i), 0, tx.pubkey, digest,
                         tx.signature, cached});
    }
  }
  pv_.record_batch(jobs.size(), verify_pool_->thread_count());
  if (jobs.empty()) return verdicts;

  // Shard: workers call only pure functions and write disjoint slots.
  obs::ProfileTimer timer(pv_.join_us);
  verify_pool_->parallel_for(jobs.size(), [&](std::size_t k) {
    const Job& job = jobs[k];
    InputVerdict& iv = verdicts.txs[job.tx].inputs[job.input];
    iv.signer = crypto::account_of(job.pubkey);
    iv.sig_ok =
        job.cached || crypto::verify(job.pubkey, job.sighash.view(), job.sig);
  });

  // Join in block order: fresh successes enter the cache exactly where the
  // serial path's verify_cached would have inserted them.
  if (sigcache_) {
    for (const Job& job : jobs) {
      if (job.cached) continue;
      if (verdicts.txs[job.tx].inputs[job.input].sig_ok)
        sigcache_->insert(job.pubkey, job.sighash, job.sig);
    }
  }
  return verdicts;
}

Status Blockchain::connect_block(Record& rec) {
  const Block& block = rec.block;
  const std::uint32_t h = block.header.height;
  obs::ProfileTimer timer(profile_connect_);

  // Stateless phase: either the full sharded pipeline (verdict slots feed
  // the serial consume loop below) or the PR 1 prefetch-only reference.
  const bool pipelined = parallel_validation();
  BlockVerdicts verdicts;
  if (pipelined)
    verdicts = compute_verdicts(block);
  else
    prefetch_signatures(block);

  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    Amount fees = 0;
    rec.undo.txs.clear();
    std::size_t applied = 0;
    Status failure = Status::success();
    for (std::size_t i = 1; i < txs.size(); ++i) {
      auto fee =
          utxo_.check_transaction(txs[i], h, sigcache_.get(), verdicts.tx(i));
      if (!fee) {
        failure = fee.error();
        break;
      }
      fees += *fee;
      rec.undo.txs.push_back(utxo_.apply_transaction(txs[i]));
      ++applied;
    }
    if (failure.ok()) {
      // Coinbase may claim at most subsidy + fees (checked after fees are
      // known; applied last but serialized first, as in Bitcoin).
      if (txs.front().total_output() > params_.block_reward + fees)
        failure = make_error("coinbase-inflation");
    }
    if (!failure.ok()) {
      for (std::size_t i = applied; i-- > 0;)
        utxo_.revert_transaction(rec.undo.txs[i]);
      rec.undo.txs.clear();
      rec.state_valid = false;
      return failure;
    }
    // Apply the coinbase and move its undo to the front (block order).
    TxUndo cb_undo = utxo_.apply_transaction(txs.front());
    rec.undo.txs.insert(rec.undo.txs.begin(), std::move(cb_undo));
    for (const auto& tx : txs) tx_index_[tx.id()] = rec.hash;
  } else {
    WorldState state = state_;
    const auto& txs = block.account_txs();
    for (std::size_t i = 0; i < txs.size(); ++i) {
      auto next = state.apply_transaction(txs[i], block.header.proposer, gas_,
                                          sigcache_.get(), verdicts.tx(i));
      if (!next) {
        rec.state_valid = false;
        return next.error();
      }
      state = std::move(*next);
    }
    if (params_.block_reward > 0)
      state = state.credit(block.header.proposer, params_.block_reward);
    if (state.root() != block.header.state_root) {
      rec.state_valid = false;
      return make_error("bad-state-root");
    }
    state_db_.put(state.root(), state);
    state_ = std::move(state);
    for (const auto& tx : block.account_txs()) tx_index_[tx.id()] = rec.hash;
  }

  for (const auto& hook : connect_hooks_) hook(block);
  return Status::success();
}

void Blockchain::disconnect_tip() {
  assert(active_.size() > 1 && "cannot disconnect genesis");
  Record* rec = find_record(active_.back());
  assert(rec);
  const Block& block = rec->block;

  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    assert(rec->undo.txs.size() == txs.size());
    for (std::size_t i = txs.size(); i-- > 0;)
      utxo_.revert_transaction(rec->undo.txs[i]);
    rec->undo.txs.clear();
    for (const auto& tx : txs) tx_index_.erase(tx.id());
  } else {
    const Record* parent = find_record(block.header.parent);
    assert(parent);
    auto prev = state_db_.get(parent->block.header.state_root);
    assert(prev && "reorg past pruned state (increase keep window)");
    state_ = std::move(*prev);
    for (const auto& tx : block.account_txs()) tx_index_.erase(tx.id());
  }

  for (const auto& hook : disconnect_hooks_) hook(block);
  active_.pop_back();
}

Result<std::uint32_t> Blockchain::adopt_branch(const BlockHash& candidate) {
  // Collect the candidate branch back to the active chain.
  std::vector<Record*> branch;
  Record* walk = find_record(candidate);
  while (walk && !on_active_chain(walk->hash)) {
    branch.push_back(walk);
    walk = find_record(walk->block.header.parent);
  }
  if (!walk) return make_error("detached-branch");
  std::reverse(branch.begin(), branch.end());

  const std::uint32_t fork_height = walk->block.header.height;
  if (fork_height < finalized_height_)
    return make_error("finality-violation",
                      "branch forks below the finalized checkpoint");
  if (fork_height < pruned_below_)
    return make_error("pruned-fork-point",
                      "cannot reorg into pruned history");

  // Disconnect down to the fork point, remembering what we removed so a
  // failed branch can be rolled back.
  std::vector<BlockHash> removed;
  while (height() > fork_height) {
    removed.push_back(active_.back());
    disconnect_tip();
  }

  std::size_t connected = 0;
  Status failure = Status::success();
  for (Record* rec : branch) {
    if (!rec->state_valid) {
      failure = make_error("invalid-ancestor");
      break;
    }
    Status st = connect_block(*rec);
    if (!st.ok()) {
      failure = st;
      break;
    }
    active_.push_back(rec->hash);
    ++connected;
  }

  if (!failure.ok()) {
    // Unwind the partial branch and restore the original chain.
    while (connected-- > 0) disconnect_tip();
    for (std::size_t i = removed.size(); i-- > 0;) {
      Record* rec = find_record(removed[i]);
      assert(rec);
      Status st = connect_block(*rec);
      assert(st.ok() && "restoring previously valid chain must succeed");
      (void)st;
      active_.push_back(rec->hash);
    }
    return failure.error();
  }

  const auto depth = static_cast<std::uint32_t>(removed.size());
  fork_stats_.reorgs += 1;
  fork_stats_.blocks_disconnected += depth;
  fork_stats_.max_reorg_depth = std::max(fork_stats_.max_reorg_depth, depth);
  if (reorg_hook_) reorg_hook_(depth, height());
  return depth;
}

Result<AcceptResult> Blockchain::submit(const Block& block) {
  const BlockHash hash = block.hash();
  if (index_.count(hash)) return AcceptResult{Accept::kDuplicate, 0};

  Status st = check_stateless(block);
  if (!st.ok()) return st.error();

  Record* parent = find_record(block.header.parent);
  if (!parent) {
    orphans_[block.header.parent].push_back(block);
    return AcceptResult{Accept::kOrphaned, 0};
  }
  if (!parent->state_valid)
    return make_error("invalid-ancestor", "parent failed state validation");

  st = check_contextual(block, *parent);
  if (!st.ok()) return st.error();

  Record rec;
  rec.block = block;
  rec.hash = hash;
  rec.total_work = parent->total_work + block_work(block.header.difficulty);
  auto [it, inserted] = index_.emplace(hash, std::move(rec));
  assert(inserted);
  Record& stored = it->second;

  AcceptResult result;
  if (block.header.parent == tip_hash()) {
    Status cs = connect_block(stored);
    if (!cs.ok()) return cs.error();
    active_.push_back(hash);
    result = AcceptResult{Accept::kConnected, 0};
  } else if (stored.total_work > total_work()) {
    auto depth = adopt_branch(hash);
    if (!depth) return depth.error();
    result = AcceptResult{Accept::kReorged, *depth};
  } else {
    fork_stats_.side_chain_blocks += 1;
    if (side_chain_hook_) side_chain_hook_(block);
    result = AcceptResult{Accept::kSideChain, 0};
  }

  process_orphans(hash);
  return result;
}

void Blockchain::process_orphans(const BlockHash& parent) {
  std::deque<BlockHash> ready{parent};
  while (!ready.empty()) {
    const BlockHash next = ready.front();
    ready.pop_front();
    auto it = orphans_.find(next);
    if (it == orphans_.end()) continue;
    std::vector<Block> blocks = std::move(it->second);
    orphans_.erase(it);
    for (const Block& b : blocks) {
      auto res = submit(b);
      if (res && res->outcome != Accept::kOrphaned) ready.push_back(b.hash());
    }
  }
}

Status Blockchain::finalize(const BlockHash& hash) {
  const Record* rec = find_record(hash);
  if (!rec) return make_error("unknown-block");
  if (!on_active_chain(hash))
    return make_error("not-active", "cannot finalize an off-chain block");
  finalized_height_ =
      std::max(finalized_height_, rec->block.header.height);
  return Status::success();
}

Result<Hash256> Blockchain::compute_state_root(
    const AccountTxList& txs, const crypto::AccountId& proposer) const {
  assert(params_.tx_model == TxModel::kAccount);
  WorldState state = state_;
  for (const auto& tx : txs) {
    auto next = state.apply_transaction(tx, proposer, gas_, sigcache_.get());
    if (!next) return next.error();
    state = std::move(*next);
  }
  if (params_.block_reward > 0)
    state = state.credit(proposer, params_.block_reward);
  return state.root();
}

std::uint64_t Blockchain::prune_bodies(std::uint32_t keep_depth) {
  if (height() <= keep_depth) return 0;
  const std::uint32_t cutoff = height() - keep_depth;
  std::uint64_t reclaimed = 0;
  for (auto& [hash, rec] : index_) {
    if (rec.body_pruned) continue;
    if (rec.block.header.height >= cutoff) continue;
    const std::size_t body =
        rec.block.serialized_size() - rec.block.header.serialized_size();
    reclaimed += body;
    // Undo data of deep blocks is discarded with the body.
    for (const auto& undo : rec.undo.txs)
      reclaimed += undo.spent.size() * 76;
    rec.undo.txs.clear();
    if (rec.block.is_utxo())
      rec.block.txs = UtxoTxList{};
    else
      rec.block.txs = AccountTxList{};
    rec.body_pruned = true;
  }
  pruned_below_ = std::max(pruned_below_, cutoff);
  return reclaimed;
}

std::size_t Blockchain::prune_states(std::uint32_t keep_depth) {
  if (params_.tx_model != TxModel::kAccount) return 0;
  std::vector<Hash256> keep;
  const std::uint32_t from =
      height() > keep_depth ? height() - keep_depth : 0;
  for (std::uint32_t h = from; h <= height(); ++h)
    keep.push_back(find(active_[h])->header.state_root);
  return state_db_.prune_except(keep);
}

Blockchain::StorageBreakdown Blockchain::storage() const {
  StorageBreakdown s;
  for (const auto& [hash, rec] : index_) {
    s.headers += rec.block.header.serialized_size();
    if (!rec.body_pruned)
      s.bodies += rec.block.serialized_size() -
                  rec.block.header.serialized_size();
    for (const auto& undo : rec.undo.txs)
      s.undo_data += undo.spent.size() * 76 + undo.created.size() * 36;
  }
  if (params_.tx_model == TxModel::kUtxo) {
    s.chainstate = utxo_.stored_bytes();
  } else {
    s.state_history = state_db_.measure().second;
    std::uint64_t txs_on_chain = 0;
    for (const BlockHash& h : active_) {
      const Record* rec = find_record(h);
      if (!rec->body_pruned) txs_on_chain += rec->block.tx_count();
    }
    s.receipts = txs_on_chain * params_.receipt_bytes_per_tx;
  }
  return s;
}

std::string Blockchain::render_tree(std::uint32_t from_height) const {
  std::map<std::uint32_t, std::vector<const Record*>> by_height;
  for (const auto& [hash, rec] : index_)
    if (rec.block.header.height >= from_height)
      by_height[rec.block.header.height].push_back(&rec);

  std::string out;
  for (auto& [h, recs] : by_height) {
    std::sort(recs.begin(), recs.end(),
              [](const Record* a, const Record* b) { return a->hash < b->hash; });
    out += "h=" + std::to_string(h) + ":";
    for (const Record* rec : recs) {
      out += ' ';
      const bool active = on_active_chain(rec->hash);
      out += active ? '[' : ' ';
      out += short_hex(rec->hash);
      if (!rec->state_valid) out += "(invalid)";
      out += active ? ']' : ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace dlt::chain
