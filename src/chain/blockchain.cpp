#include "chain/blockchain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_set>

#include "chain/codec.hpp"
#include "core/partition.hpp"
#include "obs/profile.hpp"
#include "support/hex.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"

namespace dlt::chain {

namespace {

/// Partition key for an outpoint: the funding txid with the output index
/// folded into the leading bytes. Equal outpoints always map to the same
/// key (so conflicting transactions can never be split apart); a key
/// collision between distinct outpoints merely over-merges two groups,
/// which is conservative and still deterministic.
Hash256 outpoint_key(const Outpoint& op) {
  Hash256 key = op.txid;
  key[0] ^= static_cast<Byte>(op.index);
  key[1] ^= static_cast<Byte>(op.index >> 8);
  key[2] ^= static_cast<Byte>(op.index >> 16);
  key[3] ^= static_cast<Byte>(op.index >> 24);
  return key;
}

/// Storage value for a chainstate outpoint entry.
Bytes encode_txout(const TxOut& out) {
  Writer w;
  w.u64(out.value);
  w.fixed(out.owner);
  return std::move(w).take();
}

/// Trie keys come back as nibble sequences; fold them into the AccountId.
crypto::AccountId nibbles_to_account(const crypto::Nibbles& nibbles) {
  crypto::AccountId id;
  for (std::size_t i = 0; i + 1 < nibbles.size() && i / 2 < 32; i += 2)
    id[i / 2] = static_cast<Byte>((nibbles[i] << 4) | nibbles[i + 1]);
  return id;
}

/// Accounts a connected account-model block touches, in deterministic
/// first-seen order: the proposer (fees + reward), then each tx's sender
/// and recipient (the derived contract account for creations).
std::vector<crypto::AccountId> touched_accounts(const Block& block) {
  std::vector<crypto::AccountId> out;
  std::unordered_set<crypto::AccountId> seen;
  const auto add = [&](const crypto::AccountId& id) {
    if (seen.insert(id).second) out.push_back(id);
  };
  add(block.header.proposer);
  for (const AccountTransaction& tx : block.account_txs()) {
    add(tx.from);
    add(tx.is_contract_creation() ? static_cast<crypto::AccountId>(tx.id())
                                  : tx.to);
  }
  return out;
}

}  // namespace

Block make_genesis_block(const ChainParams& params, const GenesisSpec& spec) {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.timestamp = spec.timestamp;
  genesis.header.difficulty = params.initial_difficulty;

  if (params.tx_model == TxModel::kUtxo) {
    // The initial state is one mint transaction paying every allocation.
    UtxoTransaction mint;
    for (const auto& [account, amount] : spec.allocations)
      mint.outputs.push_back(TxOut{amount, account});
    genesis.txs = UtxoTxList{std::move(mint)};
  } else {
    genesis.txs = AccountTxList{};
    WorldState state;
    for (const auto& [account, amount] : spec.allocations)
      state = state.credit(account, amount);
    genesis.header.state_root = state.root();
  }
  genesis.header.merkle_root = genesis.compute_merkle_root();
  return genesis;
}

Blockchain::Blockchain(ChainParams params, GenesisSpec genesis)
    : params_(std::move(params)) {
  Block g = make_genesis_block(params_, genesis);
  const BlockHash gh = g.hash();

  Record rec;
  rec.block = g;
  rec.hash = gh;
  rec.total_work = block_work(g.header.difficulty);

  if (params_.tx_model == TxModel::kUtxo) {
    for (const auto& tx : rec.block.utxo_txs()) {
      tx_index_[tx.id()] = gh;
      rec.undo.txs.push_back(utxo_.apply_transaction(tx));
    }
  } else {
    WorldState state;
    for (const auto& [account, amount] : genesis.allocations)
      state = state.credit(account, amount);
    state_ = state;
    state_db_.put(state.root(), state);
  }

  index_.emplace(gh, std::move(rec));
  active_.push_back(gh);
}

Blockchain::Record* Blockchain::find_record(const BlockHash& hash) {
  auto it = index_.find(hash);
  return it == index_.end() ? nullptr : &it->second;
}

const Blockchain::Record* Blockchain::find_record(
    const BlockHash& hash) const {
  auto it = index_.find(hash);
  return it == index_.end() ? nullptr : &it->second;
}

const Block* Blockchain::find(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec ? &rec->block : nullptr;
}

bool Blockchain::body_pruned(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec != nullptr && rec->body_pruned;
}

const Block* Blockchain::at_height(std::uint32_t h) const {
  if (h >= active_.size()) return nullptr;
  return find(active_[h]);
}

bool Blockchain::on_active_chain(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  if (!rec) return false;
  const std::uint32_t h = rec->block.header.height;
  return h < active_.size() && active_[h] == hash;
}

double Blockchain::total_work() const {
  return find_record(active_.back())->total_work;
}

double Blockchain::total_work_of(const BlockHash& hash) const {
  const Record* rec = find_record(hash);
  return rec ? rec->total_work : 0.0;
}

std::uint32_t Blockchain::confirmations(const TxId& txid) const {
  auto h = tx_height(txid);
  if (!h) return 0;
  return height() - *h + 1;
}

std::optional<std::uint32_t> Blockchain::tx_height(const TxId& txid) const {
  auto it = tx_index_.find(txid);
  if (it == tx_index_.end()) return std::nullopt;
  const Record* rec = find_record(it->second);
  if (!rec) return std::nullopt;
  const std::uint32_t h = rec->block.header.height;
  if (h >= active_.size() || active_[h] != it->second) return std::nullopt;
  return h;
}

double Blockchain::next_difficulty(const BlockHash& parent_hash) const {
  const Record* parent = find_record(parent_hash);
  assert(parent && "next_difficulty of unknown parent");
  if (params_.consensus == ConsensusKind::kProofOfStake) return 1.0;

  const std::uint32_t h_next = parent->block.header.height + 1;
  const std::uint32_t window = params_.retarget_window;
  if (window == 0 || h_next % window != 0)
    return parent->block.header.difficulty;

  std::uint32_t anc_height;
  std::uint32_t intervals;
  if (window == 1) {
    // Per-block adjustment (Ethereum-style): last observed interval.
    if (parent->block.header.height < 1)
      return parent->block.header.difficulty;
    anc_height = parent->block.header.height - 1;
    intervals = 1;
  } else {
    if (h_next < window) return parent->block.header.difficulty;
    anc_height = h_next - window;
    intervals = window - 1;
    if (intervals == 0) return parent->block.header.difficulty;
  }

  const Record* anc = parent;
  while (anc->block.header.height > anc_height) {
    anc = find_record(anc->block.header.parent);
    assert(anc && "broken parent linkage");
  }
  const double span =
      parent->block.header.timestamp - anc->block.header.timestamp;
  return retarget_difficulty(params_, parent->block.header.difficulty, span,
                             intervals);
}

Status Blockchain::check_stateless(const Block& block) const {
  const bool expects_utxo = params_.tx_model == TxModel::kUtxo;
  if (block.is_utxo() != expects_utxo)
    return make_error("wrong-tx-model");
  if (block.header.parent.is_zero())
    return make_error("duplicate-genesis", "non-genesis with zero parent");
  if (block.compute_merkle_root() != block.header.merkle_root)
    return make_error("bad-merkle-root");
  if (params_.max_block_bytes > 0 &&
      block.serialized_size() > params_.max_block_bytes)
    return make_error("oversize-block");
  if (!block.is_utxo() && params_.block_gas_limit > 0 &&
      block.total_gas() > params_.block_gas_limit)
    return make_error("gas-limit-exceeded");
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    if (txs.empty() || !txs.front().is_coinbase())
      return make_error("missing-coinbase");
    for (std::size_t i = 1; i < txs.size(); ++i)
      if (txs[i].is_coinbase())
        return make_error("multiple-coinbase");
  }
  return Status::success();
}

Status Blockchain::check_contextual(const Block& block,
                                    const Record& parent) const {
  if (block.header.height != parent.block.header.height + 1)
    return make_error("bad-height");
  if (block.header.timestamp + 1e-9 < parent.block.header.timestamp)
    return make_error("timestamp-regression");
  const double expected = next_difficulty(parent.hash);
  if (std::abs(block.header.difficulty - expected) >
      1e-9 * std::max(1.0, expected))
    return make_error("bad-difficulty");
  if (params_.verify_pow &&
      params_.consensus == ConsensusKind::kProofOfWork &&
      !meets_target(block.header.pow_digest(), block.header.difficulty))
    return make_error("bad-pow", "hash does not meet target");
  return Status::success();
}

void Blockchain::set_metrics(obs::MetricsRegistry* metrics) {
  profile_connect_ =
      metrics ? &metrics->histogram("profile.connect_block_us") : nullptr;
  profile_prefetch_ =
      metrics ? &metrics->histogram("profile.prefetch_us") : nullptr;
  pv_.wire(obs::Probe{metrics, nullptr, {}});
  ps_.wire(obs::Probe{metrics, nullptr, {}});
}

void Blockchain::prefetch_signatures(const Block& block) const {
  if (!verify_pool_ || !sigcache_) return;
  obs::ProfileTimer timer(profile_prefetch_);

  // Collect the independent (pubkey, sighash, signature) checks in block
  // order. Sighashes are memoized here, on the simulation thread, so the
  // workers below never race on a DigestCache.
  struct Check {
    std::uint64_t pubkey;
    Hash256 sighash;
    crypto::Signature sig;
  };
  std::vector<Check> checks;
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    for (std::size_t i = 1; i < txs.size(); ++i) {
      const Hash256 digest = txs[i].sighash();
      for (const TxIn& in : txs[i].inputs)
        if (!sigcache_->peek(in.pubkey, digest, in.signature))
          checks.push_back(Check{in.pubkey, digest, in.signature});
    }
  } else {
    for (const auto& tx : block.account_txs())
      if (!sigcache_->peek(tx.pubkey, tx.sighash(), tx.signature))
        checks.push_back(Check{tx.pubkey, tx.sighash(), tx.signature});
  }
  if (checks.empty()) return;

  // Verify misses in parallel; each worker writes only its own slot.
  std::vector<std::uint8_t> ok(checks.size(), 0);
  verify_pool_->parallel_for(checks.size(), [&](std::size_t i) {
    const Check& c = checks[i];
    ok[i] = crypto::verify(c.pubkey, c.sighash.view(), c.sig) ? 1 : 0;
  });

  // Join in index order: stage successes in the cache; failures fall
  // through to the serial path, which reports them exactly as before.
  for (std::size_t i = 0; i < checks.size(); ++i)
    if (ok[i])
      sigcache_->insert(checks[i].pubkey, checks[i].sighash, checks[i].sig);
}

BlockVerdicts Blockchain::compute_verdicts(const Block& block) const {
  BlockVerdicts verdicts;
  // Collect: one job per signed input, in block order, on the simulation
  // thread. Sighash memoization and sigcache probes happen here so workers
  // only ever touch the immutable Job and their own verdict slot.
  struct Job {
    std::uint32_t tx;
    std::uint32_t input;
    std::uint64_t pubkey;
    Hash256 sighash;
    crypto::Signature sig;
    bool cached;  // sigcache hit; worker skips the verify
  };
  std::vector<Job> jobs;
  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    verdicts.txs.resize(txs.size());
    for (std::size_t i = 1; i < txs.size(); ++i) {
      const Hash256 digest = txs[i].sighash();
      verdicts.txs[i].inputs.resize(txs[i].inputs.size());
      for (std::size_t j = 0; j < txs[i].inputs.size(); ++j) {
        const TxIn& in = txs[i].inputs[j];
        const bool cached =
            sigcache_ && sigcache_->contains(in.pubkey, digest, in.signature);
        jobs.push_back(Job{static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j), in.pubkey, digest,
                           in.signature, cached});
      }
    }
  } else {
    const auto& txs = block.account_txs();
    verdicts.txs.resize(txs.size());
    for (std::size_t i = 0; i < txs.size(); ++i) {
      const AccountTransaction& tx = txs[i];
      const Hash256 digest = tx.sighash();
      verdicts.txs[i].inputs.resize(1);
      const bool cached =
          sigcache_ && sigcache_->contains(tx.pubkey, digest, tx.signature);
      jobs.push_back(Job{static_cast<std::uint32_t>(i), 0, tx.pubkey, digest,
                         tx.signature, cached});
    }
  }
  pv_.record_batch(jobs.size(), verify_pool_->thread_count());
  if (jobs.empty()) return verdicts;

  // Shard: workers call only pure functions and write disjoint slots.
  obs::ProfileTimer timer(pv_.join_us);
  verify_pool_->parallel_for(jobs.size(), [&](std::size_t k) {
    const Job& job = jobs[k];
    InputVerdict& iv = verdicts.txs[job.tx].inputs[job.input];
    iv.signer = crypto::account_of(job.pubkey);
    iv.sig_ok =
        job.cached || crypto::verify(job.pubkey, job.sighash.view(), job.sig);
  });

  // Join in block order: fresh successes enter the cache exactly where the
  // serial path's verify_cached would have inserted them.
  if (sigcache_) {
    for (const Job& job : jobs) {
      if (job.cached) continue;
      if (verdicts.txs[job.tx].inputs[job.input].sig_ok)
        sigcache_->insert(job.pubkey, job.sighash, job.sig);
    }
  }
  return verdicts;
}

Status Blockchain::connect_block(Record& rec) {
  const Block& block = rec.block;
  obs::ProfileTimer timer(profile_connect_);

  // Stateless phase: either the full sharded pipeline (verdict slots feed
  // the stateful phase below) or the PR 1 prefetch-only reference. The
  // sharded *stateful* phase also consumes verdict slots — its group
  // workers must never touch the sigcache or a digest cache — so
  // parallel_state implies the verdict pipeline.
  const bool pipelined = parallel_validation() || parallel_state();
  BlockVerdicts verdicts;
  if (pipelined)
    verdicts = compute_verdicts(block);
  else
    prefetch_signatures(block);

  Status st = Status::success();
  bool handled = false;
  if (parallel_state()) {
    std::optional<Status> sharded = block.is_utxo()
                                        ? connect_utxo_sharded(rec, verdicts)
                                        : connect_account_sharded(rec, verdicts);
    if (sharded) {
      st = *sharded;
      handled = true;
    }
  }
  if (!handled)
    st = block.is_utxo() ? connect_utxo(rec, verdicts)
                         : connect_account(rec, verdicts);
  if (!st.ok()) return st;

  persist_connect(rec);
  for (const auto& hook : connect_hooks_) hook(block);
  return Status::success();
}

Status Blockchain::connect_utxo(Record& rec, const BlockVerdicts& verdicts) {
  const Block& block = rec.block;
  const std::uint32_t h = block.header.height;
  const auto& txs = block.utxo_txs();
  Amount fees = 0;
  rec.undo.txs.clear();
  std::size_t applied = 0;
  Status failure = Status::success();
  for (std::size_t i = 1; i < txs.size(); ++i) {
    auto fee =
        utxo_.check_transaction(txs[i], h, sigcache_.get(), verdicts.tx(i));
    if (!fee) {
      failure = fee.error();
      break;
    }
    fees += *fee;
    rec.undo.txs.push_back(utxo_.apply_transaction(txs[i]));
    ++applied;
  }
  if (failure.ok()) {
    // Coinbase may claim at most subsidy + fees (checked after fees are
    // known; applied last but serialized first, as in Bitcoin).
    if (txs.front().total_output() > params_.block_reward + fees)
      failure = make_error("coinbase-inflation");
  }
  if (!failure.ok()) {
    for (std::size_t i = applied; i-- > 0;)
      utxo_.revert_transaction(rec.undo.txs[i]);
    rec.undo.txs.clear();
    rec.state_valid = false;
    return failure;
  }
  // Apply the coinbase and move its undo to the front (block order).
  TxUndo cb_undo = utxo_.apply_transaction(txs.front());
  rec.undo.txs.insert(rec.undo.txs.begin(), std::move(cb_undo));
  for (const auto& tx : txs) tx_index_[tx.id()] = rec.hash;
  return Status::success();
}

Status Blockchain::connect_account(Record& rec, const BlockVerdicts& verdicts) {
  const Block& block = rec.block;
  WorldState state = state_;
  const auto& txs = block.account_txs();
  for (std::size_t i = 0; i < txs.size(); ++i) {
    auto next = state.apply_transaction(txs[i], block.header.proposer, gas_,
                                        sigcache_.get(), verdicts.tx(i));
    if (!next) {
      rec.state_valid = false;
      return next.error();
    }
    state = std::move(*next);
  }
  if (params_.block_reward > 0)
    state = state.credit(block.header.proposer, params_.block_reward);
  if (state.root() != block.header.state_root) {
    rec.state_valid = false;
    return make_error("bad-state-root");
  }
  state_db_.put(state.root(), state);
  state_ = std::move(state);
  for (const auto& tx : block.account_txs()) tx_index_[tx.id()] = rec.hash;
  return Status::success();
}

std::optional<Status> Blockchain::connect_utxo_sharded(
    Record& rec, const BlockVerdicts& verdicts) {
  const Block& block = rec.block;
  const auto& txs = block.utxo_txs();
  const std::size_t n = txs.size();  // txs[0] is the coinbase
  if (n < 3) return std::nullopt;    // fewer than two payments: nothing to shard

  // Key extraction on the simulation thread. A payment touches the
  // outpoints it spends *and* the outpoints it creates, so an in-block
  // dependency chain (tx B spends an output of tx A) lands in one group.
  // Txids are memoized here so group workers never write a digest cache.
  core::ConflictPartitioner part(n - 1);
  std::vector<TxId> ids(n);
  for (std::size_t i = 1; i < n; ++i) {
    ids[i] = txs[i].id();
    for (const TxIn& in : txs[i].inputs)
      part.add_key(i - 1, outpoint_key(in.prevout));
    for (std::uint32_t j = 0; j < txs[i].outputs.size(); ++j)
      part.add_key(i - 1, outpoint_key(Outpoint{ids[i], j}));
  }
  const auto groups = part.groups();
  ps_.record_batch(groups.size(), verify_pool_->thread_count());
  if (groups.size() < 2) {
    // One spanning group: every payment conflicts; nothing to parallelize.
    ps_.record_demotion();
    return std::nullopt;
  }

  // Group checks: side-effect-free validation against the frozen pre-block
  // set plus a group-local overlay. Workers read disjoint state (group
  // closure: every outpoint a group member touches is keyed to the group),
  // take verdict slots for all crypto, and write only their own slots.
  const std::uint32_t h = block.header.height;
  std::vector<Amount> fees(n, 0);
  std::vector<std::uint8_t> group_failed(groups.size(), 0);
  {
    obs::ProfileTimer timer(ps_.join_us);
    verify_pool_->parallel_for(groups.size(), [&](std::size_t g) {
      std::unordered_map<Outpoint, TxOut> created;
      std::unordered_set<Outpoint> spent;
      const auto lookup = [&](const Outpoint& op) -> std::optional<TxOut> {
        if (spent.count(op)) return std::nullopt;
        auto it = created.find(op);
        if (it != created.end()) return it->second;
        return utxo_.get(op);
      };
      for (const std::size_t member : groups[g]) {
        const std::size_t i = member + 1;  // partition items skip the coinbase
        auto fee = check_utxo_transaction(lookup, txs[i], h,
                                          /*sigcache=*/nullptr, verdicts.tx(i));
        if (!fee) {
          group_failed[g] = 1;
          break;
        }
        fees[i] = *fee;
        for (const TxIn& in : txs[i].inputs) spent.insert(in.prevout);
        for (std::uint32_t j = 0; j < txs[i].outputs.size(); ++j)
          created.emplace(Outpoint{ids[i], j}, txs[i].outputs[j]);
      }
    });
  }
  for (const std::uint8_t failed : group_failed)
    if (failed) {
      // Some check failed (invalid block, or — defensively — a read the
      // partition did not predict). The serial reference path re-runs the
      // block and reports the first failure in block order, exactly as if
      // the sharded phase never existed.
      ps_.record_demotion();
      return std::nullopt;
    }

  // Commit: every check passed, so replay the exact serial operation
  // sequence — applies in block order, coinbase-inflation rule, coinbase
  // undo rotated to the front — without re-checking.
  Amount total_fees = 0;
  for (std::size_t i = 1; i < n; ++i) total_fees += fees[i];
  rec.undo.txs.clear();
  if (txs.front().total_output() > params_.block_reward + total_fees) {
    // The serial path applies then reverts every payment, which nets out
    // to an untouched state; checking before applying lands in the same
    // observable place.
    rec.state_valid = false;
    return Status(make_error("coinbase-inflation"));
  }
  for (std::size_t i = 1; i < n; ++i)
    rec.undo.txs.push_back(utxo_.apply_transaction(txs[i]));
  TxUndo cb_undo = utxo_.apply_transaction(txs.front());
  rec.undo.txs.insert(rec.undo.txs.begin(), std::move(cb_undo));
  for (const auto& tx : txs) tx_index_[tx.id()] = rec.hash;
  ps_.record_applied(n - 1);
  return Status::success();
}

std::optional<Status> Blockchain::connect_account_sharded(
    Record& rec, const BlockVerdicts& verdicts) {
  const Block& block = rec.block;
  const auto& txs = block.account_txs();
  const std::size_t n = txs.size();
  if (n < 2) return std::nullopt;

  // Key extraction: a transaction touches its sender and its recipient
  // (the deterministic contract address for creations). Fee credits couple
  // every transaction to the proposer account, so a block whose payments
  // read or write the proposer cannot form independent groups.
  const crypto::AccountId& proposer = block.header.proposer;
  core::ConflictPartitioner part(n);
  std::vector<crypto::AccountId> recipients(n);
  bool touches_proposer = false;
  for (std::size_t i = 0; i < n; ++i) {
    recipients[i] = txs[i].is_contract_creation()
                        ? static_cast<crypto::AccountId>(txs[i].id())
                        : txs[i].to;
    part.add_key(i, txs[i].from);
    part.add_key(i, recipients[i]);
    if (txs[i].from == proposer || recipients[i] == proposer)
      touches_proposer = true;
  }
  const auto groups = part.groups();
  ps_.record_batch(groups.size(), verify_pool_->thread_count());
  if (groups.size() < 2 || touches_proposer) {
    ps_.record_demotion();
    return std::nullopt;
  }

  // Group checks against the frozen pre-block world state plus a
  // group-local account overlay that mirrors apply_transaction's effects
  // minus the fee credit (the proposer is outside every group by the
  // demotion rule above). Workers touch no trie mutation, no sigcache.
  std::vector<std::uint8_t> group_failed(groups.size(), 0);
  {
    obs::ProfileTimer timer(ps_.join_us);
    verify_pool_->parallel_for(groups.size(), [&](std::size_t g) {
      std::unordered_map<crypto::AccountId, AccountState> overlay;
      const auto lookup =
          [&](const crypto::AccountId& id) -> std::optional<AccountState> {
        auto it = overlay.find(id);
        if (it != overlay.end()) return it->second;
        return state_.get(id);
      };
      for (const std::size_t i : groups[g]) {
        auto fee = check_account_transaction(lookup, txs[i], gas_,
                                             /*sigcache=*/nullptr,
                                             verdicts.tx(i));
        if (!fee) {
          group_failed[g] = 1;
          break;
        }
        AccountState sender = *lookup(txs[i].from);
        sender.balance -= txs[i].value + *fee;
        sender.nonce += 1;
        overlay[txs[i].from] = sender;
        if (!txs[i].is_contract_creation()) {
          AccountState recipient =
              lookup(txs[i].to).value_or(AccountState{});
          recipient.balance += txs[i].value;
          overlay[txs[i].to] = recipient;
        } else {
          AccountState contract;
          contract.balance = txs[i].value;
          contract.code_size = txs[i].data_size;
          overlay[recipients[i]] = contract;
        }
      }
    });
  }
  for (const std::uint8_t failed : group_failed)
    if (failed) {
      ps_.record_demotion();
      return std::nullopt;
    }

  // Commit: the trie's version sequence (and thus every intermediate and
  // final state root) must be byte-identical to the reference, so the
  // commit *is* the serial apply in block order. The sharded phase
  // front-loads the validity checks; on this path they have all passed.
  Status st = connect_account(rec, verdicts);
  if (st.ok()) ps_.record_applied(n);
  return st;
}

void Blockchain::disconnect_tip() {
  assert(active_.size() > 1 && "cannot disconnect genesis");
  Record* rec = find_record(active_.back());
  assert(rec);
  const Block& block = rec->block;

  if (block.is_utxo()) {
    const auto& txs = block.utxo_txs();
    assert(rec->undo.txs.size() == txs.size());
    for (std::size_t i = txs.size(); i-- > 0;)
      utxo_.revert_transaction(rec->undo.txs[i]);
    for (const auto& tx : txs) tx_index_.erase(tx.id());
    persist_disconnect(*rec);  // needs the undo record; clear after
    rec->undo.txs.clear();
  } else {
    const Record* parent = find_record(block.header.parent);
    assert(parent);
    auto prev = state_db_.get(parent->block.header.state_root);
    assert(prev && "reorg past pruned state (increase keep window)");
    state_ = std::move(*prev);
    for (const auto& tx : block.account_txs()) tx_index_.erase(tx.id());
    persist_disconnect(*rec);
  }

  for (const auto& hook : disconnect_hooks_) hook(block);
  active_.pop_back();
}

Result<std::uint32_t> Blockchain::adopt_branch(const BlockHash& candidate) {
  // Collect the candidate branch back to the active chain.
  std::vector<Record*> branch;
  Record* walk = find_record(candidate);
  while (walk && !on_active_chain(walk->hash)) {
    branch.push_back(walk);
    walk = find_record(walk->block.header.parent);
  }
  if (!walk) return make_error("detached-branch");
  std::reverse(branch.begin(), branch.end());

  const std::uint32_t fork_height = walk->block.header.height;
  if (fork_height < finalized_height_)
    return make_error("finality-violation",
                      "branch forks below the finalized checkpoint");
  if (fork_height < pruned_below_)
    return make_error("pruned-fork-point",
                      "cannot reorg into pruned history");

  // Disconnect down to the fork point, remembering what we removed so a
  // failed branch can be rolled back.
  std::vector<BlockHash> removed;
  while (height() > fork_height) {
    removed.push_back(active_.back());
    disconnect_tip();
  }

  std::size_t connected = 0;
  Status failure = Status::success();
  for (Record* rec : branch) {
    if (!rec->state_valid) {
      failure = make_error("invalid-ancestor");
      break;
    }
    Status st = connect_block(*rec);
    if (!st.ok()) {
      failure = st;
      break;
    }
    active_.push_back(rec->hash);
    ++connected;
  }

  if (!failure.ok()) {
    // Unwind the partial branch and restore the original chain.
    while (connected-- > 0) disconnect_tip();
    for (std::size_t i = removed.size(); i-- > 0;) {
      Record* rec = find_record(removed[i]);
      assert(rec);
      Status st = connect_block(*rec);
      assert(st.ok() && "restoring previously valid chain must succeed");
      (void)st;
      active_.push_back(rec->hash);
    }
    return failure.error();
  }

  const auto depth = static_cast<std::uint32_t>(removed.size());
  fork_stats_.reorgs += 1;
  fork_stats_.blocks_disconnected += depth;
  fork_stats_.max_reorg_depth = std::max(fork_stats_.max_reorg_depth, depth);
  if (reorg_hook_) reorg_hook_(depth, height());
  return depth;
}

Result<AcceptResult> Blockchain::submit(const Block& block) {
  const BlockHash hash = block.hash();
  if (index_.count(hash)) return AcceptResult{Accept::kDuplicate, 0};

  Status st = check_stateless(block);
  if (!st.ok()) return st.error();

  Record* parent = find_record(block.header.parent);
  if (!parent) {
    orphans_[block.header.parent].push_back(block);
    return AcceptResult{Accept::kOrphaned, 0};
  }
  if (!parent->state_valid)
    return make_error("invalid-ancestor", "parent failed state validation");

  st = check_contextual(block, *parent);
  if (!st.ok()) return st.error();

  Record rec;
  rec.block = block;
  rec.hash = hash;
  rec.total_work = parent->total_work + block_work(block.header.difficulty);
  auto [it, inserted] = index_.emplace(hash, std::move(rec));
  assert(inserted);
  Record& stored = it->second;
  // Persist at admission: side-chain blocks count toward §V storage too,
  // and a block that later fails connection stays in the index.
  persist_block(stored);

  AcceptResult result;
  if (block.header.parent == tip_hash()) {
    Status cs = connect_block(stored);
    if (!cs.ok()) return cs.error();
    active_.push_back(hash);
    result = AcceptResult{Accept::kConnected, 0};
  } else if (stored.total_work > total_work()) {
    auto depth = adopt_branch(hash);
    if (!depth) return depth.error();
    result = AcceptResult{Accept::kReorged, *depth};
  } else {
    fork_stats_.side_chain_blocks += 1;
    if (side_chain_hook_) side_chain_hook_(block);
    result = AcceptResult{Accept::kSideChain, 0};
  }

  process_orphans(hash);
  return result;
}

void Blockchain::process_orphans(const BlockHash& parent) {
  std::deque<BlockHash> ready{parent};
  while (!ready.empty()) {
    const BlockHash next = ready.front();
    ready.pop_front();
    auto it = orphans_.find(next);
    if (it == orphans_.end()) continue;
    std::vector<Block> blocks = std::move(it->second);
    orphans_.erase(it);
    for (const Block& b : blocks) {
      auto res = submit(b);
      if (res && res->outcome != Accept::kOrphaned) ready.push_back(b.hash());
    }
  }
}

Status Blockchain::finalize(const BlockHash& hash) {
  const Record* rec = find_record(hash);
  if (!rec) return make_error("unknown-block");
  if (!on_active_chain(hash))
    return make_error("not-active", "cannot finalize an off-chain block");
  finalized_height_ =
      std::max(finalized_height_, rec->block.header.height);
  return Status::success();
}

Result<Hash256> Blockchain::compute_state_root(
    const AccountTxList& txs, const crypto::AccountId& proposer) const {
  assert(params_.tx_model == TxModel::kAccount);
  WorldState state = state_;
  for (const auto& tx : txs) {
    auto next = state.apply_transaction(tx, proposer, gas_, sigcache_.get());
    if (!next) return next.error();
    state = std::move(*next);
  }
  if (params_.block_reward > 0)
    state = state.credit(proposer, params_.block_reward);
  return state.root();
}

std::uint64_t Blockchain::prune_bodies(std::uint32_t keep_depth) {
  if (height() <= keep_depth) return 0;
  const std::uint32_t cutoff = height() - keep_depth;
  std::uint64_t reclaimed = 0;
  std::vector<BlockHash> pruned;
  for (auto& [hash, rec] : index_) {
    if (rec.body_pruned) continue;
    if (rec.block.header.height >= cutoff) continue;
    const std::size_t body =
        rec.offloaded_body_bytes
            ? rec.offloaded_body_bytes
            : rec.block.serialized_size() - rec.block.header.serialized_size();
    reclaimed += body;
    rec.offloaded_body_bytes = 0;
    // Undo data of deep blocks is discarded with the body.
    for (const auto& undo : rec.undo.txs)
      reclaimed += undo.spent.size() * 76;
    rec.undo.txs.clear();
    if (rec.block.is_utxo())
      rec.block.txs = UtxoTxList{};
    else
      rec.block.txs = AccountTxList{};
    rec.body_pruned = true;
    pruned.push_back(hash);
  }
  pruned_below_ = std::max(pruned_below_, cutoff);
  if (store_ && !pruned.empty()) {
    for (const BlockHash& hash : pruned)
      store_->log().erase(storage::RecordType::kBody, hash);
    store_->note_pruned(store_->log().compact());
    store_->commit();
  }
  return reclaimed;
}

std::size_t Blockchain::prune_states(std::uint32_t keep_depth) {
  if (params_.tx_model != TxModel::kAccount) return 0;
  std::vector<Hash256> keep;
  const std::uint32_t from =
      height() > keep_depth ? height() - keep_depth : 0;
  for (std::uint32_t h = from; h <= height(); ++h)
    keep.push_back(find(active_[h])->header.state_root);
  const std::size_t reclaimed = state_db_.prune_except(keep);
  if (store_) {
    // Mirror the state-delta pruning discipline in the log: drop kDelta
    // records for blocks outside the kept window of the active chain.
    std::unordered_set<BlockHash> kept;
    for (std::uint32_t h = from; h <= height(); ++h) kept.insert(active_[h]);
    bool erased = false;
    for (const auto& [hash, rec] : index_)
      if (!kept.count(hash))
        erased |= store_->log().erase(storage::RecordType::kDelta, hash);
    if (erased) {
      store_->note_pruned(store_->log().compact());
      store_->commit();
    }
  }
  return reclaimed;
}

Blockchain::StorageBreakdown Blockchain::storage() const {
  StorageBreakdown s;
  for (const auto& [hash, rec] : index_) {
    s.headers += rec.block.header.serialized_size();
    if (rec.offloaded_body_bytes)
      s.bodies += rec.offloaded_body_bytes;  // on disk, still part of §V
    else if (!rec.body_pruned)
      s.bodies += rec.block.serialized_size() -
                  rec.block.header.serialized_size();
    for (const auto& undo : rec.undo.txs)
      s.undo_data += undo.spent.size() * 76 + undo.created.size() * 36;
  }
  if (params_.tx_model == TxModel::kUtxo) {
    s.chainstate = utxo_.stored_bytes();
  } else {
    s.state_history = state_db_.measure().second;
    std::uint64_t txs_on_chain = 0;
    for (const BlockHash& h : active_) {
      const Record* rec = find_record(h);
      if (!rec->body_pruned) txs_on_chain += rec->block.tx_count();
    }
    s.receipts = txs_on_chain * params_.receipt_bytes_per_tx;
  }
  return s;
}

void Blockchain::attach_store(std::shared_ptr<storage::LedgerStore> store) {
  store_ = std::move(store);
  if (!store_) return;
  const BlockHash gh = active_.front();
  const Record& genesis = *find_record(gh);
  if (!store_->log().contains(storage::RecordType::kHeader, gh)) {
    persist_block(genesis);
    if (params_.tx_model == TxModel::kUtxo) {
      persist_connect(genesis);
    } else {
      // Seed the state backend with the genesis allocations. The trie key
      // is the nibble-expanded AccountId and the leaf value is the encoded
      // AccountState — exactly what persist_connect writes per block.
      state_.trie().for_each(
          [&](const crypto::Nibbles& key, const Bytes& value) {
            store_->state().put(nibbles_to_account(key), value);
          });
    }
  }
  store_->commit();
}

void Blockchain::persist_block(const Record& rec) {
  if (!store_) return;
  auto& log = store_->log();
  // Already logged: a reorg rollback or a replayed submit re-offers blocks
  // the log holds; re-appending would upsert dead bytes nondeterministically
  // between clean and recovered runs.
  if (log.contains(storage::RecordType::kHeader, rec.hash)) return;
  log.append(storage::RecordType::kHeader, rec.hash,
             encode_header_record(rec.block.header));
  log.append(storage::RecordType::kBody, rec.hash,
             encode_body_record(rec.block));
  store_->commit();
}

void Blockchain::persist_connect(const Record& rec) {
  if (!store_) return;
  if (rec.block.is_utxo()) {
    // Replay the block's effect on the chainstate in block order. Created
    // outputs are read from the transaction itself, not the live set — a
    // later tx in the same block may already have spent them.
    const auto& txs = rec.block.utxo_txs();
    assert(rec.undo.txs.size() == txs.size());
    for (std::size_t k = 0; k < txs.size(); ++k) {
      const TxUndo& u = rec.undo.txs[k];
      for (const auto& [op, out] : u.spent)
        store_->state().erase(outpoint_key(op));
      for (const Outpoint& op : u.created)
        store_->state().put(outpoint_key(op),
                            encode_txout(txs[k].outputs[op.index]));
    }
  } else {
    // Write the post-block value of every touched account and log the
    // delta record that makes the write set replayable/prunable.
    Writer delta;
    delta.fixed(rec.block.header.state_root);
    const auto ids = touched_accounts(rec.block);
    delta.varint(ids.size());
    for (const crypto::AccountId& id : ids) {
      delta.fixed(id);
      if (auto st = state_.get(id)) {
        const Bytes value = st->encode();
        delta.u8(1);
        delta.blob(value);
        store_->state().put(id, value);
      } else {
        delta.u8(0);
        store_->state().erase(id);
      }
    }
    store_->log().append(storage::RecordType::kDelta, rec.hash,
                         std::move(delta).take());
  }
  store_->commit();
}

void Blockchain::persist_disconnect(const Record& rec) {
  if (!store_) return;
  if (rec.block.is_utxo()) {
    // Inverse of persist_connect, in reverse tx order: delete what the
    // block created, restore what it spent.
    for (std::size_t k = rec.undo.txs.size(); k-- > 0;) {
      const TxUndo& u = rec.undo.txs[k];
      for (const Outpoint& op : u.created)
        store_->state().erase(outpoint_key(op));
      for (const auto& [op, out] : u.spent)
        store_->state().put(outpoint_key(op), encode_txout(out));
    }
  } else {
    // state_ has already been restored to the parent version; rewrite the
    // touched accounts from it. The kDelta record stays in the log, just
    // as state_db_ keeps the disconnected version (prune_states reclaims
    // both).
    for (const crypto::AccountId& id : touched_accounts(rec.block)) {
      if (auto st = state_.get(id))
        store_->state().put(id, st->encode());
      else
        store_->state().erase(id);
    }
  }
  store_->commit();
}

std::size_t Blockchain::replay_from_store() {
  if (!store_) return 0;
  // Snapshot the header sequence first: submit() appends to the log while
  // we iterate, and append order is the order blocks were admitted, so a
  // child is always offered after its parent (no orphan limbo).
  std::vector<std::pair<Hash256, Bytes>> headers;
  store_->log().for_each(
      [&](storage::RecordType type, const Hash256& key, ByteView payload) {
        if (type == storage::RecordType::kHeader)
          headers.emplace_back(key, Bytes(payload.begin(), payload.end()));
      });
  std::size_t accepted = 0;
  for (const auto& [hash, raw] : headers) {
    if (index_.count(hash)) continue;  // genesis, or already replayed
    const auto body = store_->log().read(storage::RecordType::kBody, hash);
    if (!body) continue;  // body pruned: header-only history, not replayable
    auto block = decode_block_records(raw, *body);
    if (!block) continue;
    auto res = submit(*block);
    if (res && res->outcome != Accept::kDuplicate) ++accepted;
  }
  return accepted;
}

Result<Block> Blockchain::read_block(const BlockHash& hash) const {
  if (!store_) return make_error("no-store");
  const auto header = store_->log().read(storage::RecordType::kHeader, hash);
  const auto body = store_->log().read(storage::RecordType::kBody, hash);
  if (!header || !body) return make_error("not-in-log");
  return decode_block_records(*header, *body);
}

std::uint64_t Blockchain::offload_bodies(std::uint32_t keep_depth) {
  if (!store_ || !store_->disk()) return 0;
  if (height() <= keep_depth) return 0;
  const std::uint32_t cutoff = height() - keep_depth;
  std::uint64_t dropped = 0;
  for (auto& [hash, rec] : index_) {
    if (rec.body_pruned || rec.offloaded_body_bytes) continue;
    if (rec.block.header.height >= cutoff) continue;
    const std::size_t body =
        rec.block.serialized_size() - rec.block.header.serialized_size();
    dropped += body;
    for (const auto& undo : rec.undo.txs)
      dropped += undo.spent.size() * 76 + undo.created.size() * 36;
    rec.undo.txs.clear();
    if (rec.block.is_utxo())
      rec.block.txs = UtxoTxList{};
    else
      rec.block.txs = AccountTxList{};
    rec.offloaded_body_bytes = body;
  }
  // Reorgs below the cutoff would need the dropped undo data; refuse them
  // the same way body pruning does.
  pruned_below_ = std::max(pruned_below_, cutoff);
  return dropped;
}

std::string Blockchain::render_tree(std::uint32_t from_height) const {
  std::map<std::uint32_t, std::vector<const Record*>> by_height;
  for (const auto& [hash, rec] : index_)
    if (rec.block.header.height >= from_height)
      by_height[rec.block.header.height].push_back(&rec);

  std::string out;
  for (auto& [h, recs] : by_height) {
    std::sort(recs.begin(), recs.end(),
              [](const Record* a, const Record* b) { return a->hash < b->hash; });
    out += "h=" + std::to_string(h) + ":";
    for (const Record* rec : recs) {
      out += ' ';
      const bool active = on_active_chain(rec->hash);
      out += active ? '[' : ' ';
      out += short_hex(rec->hash);
      if (!rec->state_valid) out += "(invalid)";
      out += active ? ']' : ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace dlt::chain
