// UTXO set: the Bitcoin-model chain state (paper §II-A, §V-B contrast:
// "the accounts keep record of account balances instead of unspent
// transaction inputs").
//
// Applying a block consumes spent outputs and creates new ones, producing
// an undo record so a soft-fork reorg (paper Fig. 4) can roll the state
// back block by block.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/transaction.hpp"
#include "chain/validation.hpp"
#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "support/result.hpp"

namespace dlt::chain {

/// Undo data for one applied transaction: what it spent (to restore) and
/// what it created (to delete) on revert.
struct TxUndo {
  std::vector<std::pair<Outpoint, TxOut>> spent;
  std::vector<Outpoint> created;
};

struct BlockUndo {
  std::vector<TxUndo> txs;  // in block order
};

/// The single definition of UTXO transaction validity, parameterized over
/// the coin view so the serial path (UtxoSet::check_transaction, lookup =
/// the live set) and the sharded stateful pipeline (lookup = frozen set +
/// group overlay) cannot diverge: same checks, same error codes, in the
/// same order. `lookup(outpoint)` returns std::optional<TxOut>.
template <typename Lookup>
Result<Amount> check_utxo_transaction(const Lookup& lookup,
                                      const UtxoTransaction& tx,
                                      std::uint32_t height,
                                      crypto::SignatureCache* sigcache,
                                      const TxVerdict* verdict) {
  if (tx.lock_height > height)
    return make_error("premature", "lock_height above current height");
  if (tx.is_coinbase())
    return make_error("unexpected-coinbase",
                      "coinbase checked at block level");
  if (tx.outputs.empty()) return make_error("no-outputs");

  const Hash256 digest = tx.sighash();
  Amount in_sum = 0;
  // Duplicate-input detection: the common case is a handful of inputs, so
  // scan the preceding ones linearly (no allocation). Fall back to a hash
  // set only for wide fan-in, keeping adversarial many-input txs O(n).
  constexpr std::size_t kLinearScanMax = 16;
  std::unordered_set<Outpoint> seen;
  if (tx.inputs.size() > kLinearScanMax) seen.reserve(tx.inputs.size());
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    const TxIn& in = tx.inputs[i];
    if (tx.inputs.size() <= kLinearScanMax) {
      for (std::size_t j = 0; j < i; ++j)
        if (tx.inputs[j].prevout == in.prevout)
          return make_error("double-spend", "duplicate input within tx");
    } else if (!seen.insert(in.prevout).second) {
      return make_error("double-spend", "duplicate input within tx");
    }

    const std::optional<TxOut> prev = lookup(in.prevout);
    if (!prev)
      return make_error("missing-utxo", "input not in UTXO set");
    const InputVerdict* iv =
        verdict && i < verdict->inputs.size() ? &verdict->inputs[i] : nullptr;
    const crypto::AccountId signer =
        iv ? iv->signer : crypto::account_of(in.pubkey);
    if (signer != prev->owner)
      return make_error("wrong-owner", "pubkey does not own prevout");
    const bool sig_ok =
        iv ? iv->sig_ok
           : crypto::verify_cached(sigcache, in.pubkey, digest, in.signature);
    if (!sig_ok) return make_error("bad-signature");
    in_sum += prev->value;
  }

  const Amount out_sum = tx.total_output();
  if (out_sum > in_sum)
    return make_error("inflation", "outputs exceed inputs");
  return in_sum - out_sum;  // fee
}

class UtxoSet {
 public:
  std::size_t size() const { return map_.size(); }

  std::optional<TxOut> get(const Outpoint& op) const;
  bool contains(const Outpoint& op) const { return map_.count(op) != 0; }

  /// Validates a transaction against this set and current height:
  /// inputs exist, signatures valid, owners match, no value inflation,
  /// lock height respected. Returns the fee (inputs - outputs). A shared
  /// crypto::SignatureCache skips repeat input-signature verifications.
  /// When `verdict` is given (parallel pipeline), signer derivation and
  /// signature checks are read from its pre-computed slots instead of
  /// being recomputed; both are pure, so errors land at the same input
  /// as the inline serial path.
  Result<Amount> check_transaction(
      const UtxoTransaction& tx, std::uint32_t height,
      crypto::SignatureCache* sigcache = nullptr,
      const TxVerdict* verdict = nullptr) const;

  /// Applies an already-checked transaction; returns its undo record.
  TxUndo apply_transaction(const UtxoTransaction& tx);

  /// Reverts a transaction using its undo record (inverse order of apply).
  void revert_transaction(const TxUndo& undo);

  /// Sum of all unspent values (conservation checks in tests).
  Amount total_value() const;

  /// All outpoints owned by `owner`, via the wallet index (O(own coins)).
  std::vector<std::pair<Outpoint, TxOut>> find_owned(
      const crypto::AccountId& owner) const;

  /// Visits `owner`'s coins in the same wallet-index order as find_owned,
  /// without materializing a vector. `fn(outpoint, txout)` returns false
  /// to stop early (e.g. once a coin selector has gathered enough value).
  template <typename Fn>
  void for_each_owned(const crypto::AccountId& owner, Fn&& fn) const {
    auto idx = by_owner_.find(owner);
    if (idx == by_owner_.end()) return;
    for (const Outpoint& op : idx->second) {
      auto it = map_.find(op);
      if (it == map_.end()) continue;  // index is kept in lockstep; defensive
      if (!fn(it->first, it->second)) return;
    }
  }

  /// Serialized-size model of the set (chainstate database size).
  std::size_t stored_bytes() const;

 private:
  void drop_index(const Outpoint& op, const crypto::AccountId& owner);

  std::unordered_map<Outpoint, TxOut> map_;
  // Wallet index: owner -> outpoints. Kept in lockstep with map_.
  std::unordered_map<crypto::AccountId, std::unordered_set<Outpoint>>
      by_owner_;
};

}  // namespace dlt::chain
