// Dynamic difficulty retargeting (paper §VI-A).
//
// "The PoW puzzle difficulty is dynamic so that the block generation time
// converges to a fixed value" -- this is why adding miners does not add
// throughput, the key §VI-A scalability point.
#pragma once

#include <cstdint>

#include "chain/params.hpp"

namespace dlt::chain {

/// New difficulty after a completed retarget window.
/// `actual_span` is the observed time for `intervals` block intervals;
/// the adjustment is clamped to params.retarget_clamp in either direction.
double retarget_difficulty(const ChainParams& params, double old_difficulty,
                           double actual_span, std::uint32_t intervals);

/// Work contributed by one block at `difficulty` (expected hash attempts).
/// Cumulative work drives the longest/heaviest-chain rule.
inline double block_work(double difficulty) { return difficulty; }

}  // namespace dlt::chain
