// Proof of Stake: validator registry, stake-weighted proposer election and
// a Casper-style finality gadget (paper §III-A2, §IV-A).
//
// "Validators deposit their stake in the smart contract, which in turn
// picks the validator allowed to create a block. The more tokens a
// validator stakes, it has a higher chance to create the next block. If an
// incorrect block is submitted, the validator's stake is burned."
//
// Finality follows Casper FFG (paper §IV-A: "a proof of stake based
// finality system that is supposed to introduce non-reversible
// checkpoints"): validators vote on (source -> target) checkpoint links;
// a supermajority link justifies the target, and a justified checkpoint
// whose direct-child checkpoint is justified becomes final.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "crypto/keys.hpp"
#include "support/result.hpp"

namespace dlt::chain {

class ValidatorSet {
 public:
  /// Deposits stake for a validator (creates or tops up).
  void deposit(const crypto::AccountId& validator, std::uint64_t pubkey,
               Amount stake);

  /// Withdraws the full stake (validator exits).
  Status withdraw(const crypto::AccountId& validator);

  /// Burns the validator's entire stake (paper: "burning stake has the
  /// same economic effect as dismantling an attacker's mining equipment").
  /// Returns the amount burned.
  Amount slash(const crypto::AccountId& validator);

  Amount stake_of(const crypto::AccountId& validator) const;
  Amount total_stake() const { return total_; }
  Amount total_slashed() const { return slashed_; }
  std::size_t size() const { return validators_.size(); }
  std::optional<std::uint64_t> pubkey_of(
      const crypto::AccountId& validator) const;

  /// Deterministic stake-weighted proposer for a slot: every honest node
  /// computes the same winner from (seed, slot). Probability of selection
  /// is proportional to stake.
  Result<crypto::AccountId> proposer_for_slot(const Hash256& seed,
                                              std::uint64_t slot) const;

  std::vector<crypto::AccountId> members() const;

 private:
  struct Entry {
    Amount stake = 0;
    std::uint64_t pubkey = 0;
  };
  // Ordered map => deterministic iteration for proposer sampling.
  std::map<crypto::AccountId, Entry> validators_;
  Amount total_ = 0;
  Amount slashed_ = 0;
};

/// A Casper FFG checkpoint vote: "I attest the chain from justified
/// checkpoint `source` to checkpoint `target`".
struct CheckpointVote {
  crypto::AccountId validator;
  std::uint64_t source_epoch = 0;
  Hash256 source_hash;
  std::uint64_t target_epoch = 0;
  Hash256 target_hash;
  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  Hash256 sighash() const;
  void sign(const crypto::KeyPair& key, Rng& rng);
  static constexpr std::size_t kSerializedSize = 32 + 8 + 32 + 8 + 32 + 24;
};

/// Outcome of feeding a vote to the gadget.
struct VoteOutcome {
  bool counted = false;
  bool justified_target = false;   // vote completed a supermajority link
  bool finalized_source = false;   // justification finalized the source
  std::optional<crypto::AccountId> slashed;  // offender, if any
};

class FinalityGadget {
 public:
  FinalityGadget(const ChainParams& params, ValidatorSet& validators,
                 Hash256 genesis_hash);

  /// Processes a vote: verifies the signature, applies Casper slashing
  /// conditions (double vote, surround vote), and accumulates stake toward
  /// the (source -> target) link.
  Result<VoteOutcome> process_vote(const CheckpointVote& vote);

  bool is_justified(std::uint64_t epoch, const Hash256& hash) const;
  std::uint64_t last_justified_epoch() const { return last_justified_epoch_; }
  std::uint64_t last_finalized_epoch() const { return last_finalized_epoch_; }
  Hash256 last_justified_hash() const { return last_justified_hash_; }
  Hash256 last_finalized_hash() const { return last_finalized_hash_; }

  std::uint64_t votes_processed() const { return votes_processed_; }
  std::uint64_t slashings() const { return slashings_; }

 private:
  struct LinkKey {
    std::uint64_t source_epoch, target_epoch;
    Hash256 source_hash, target_hash;
    bool operator<(const LinkKey& o) const {
      return std::tie(source_epoch, target_epoch, source_hash, target_hash) <
             std::tie(o.source_epoch, o.target_epoch, o.source_hash,
                      o.target_hash);
    }
  };

  /// Casper commandments: no two votes with the same target epoch; no vote
  /// surrounding an earlier one (s1 < s2 < t2 < t1 in either direction).
  std::optional<Error> check_slashable(const CheckpointVote& vote) const;

  const ChainParams& params_;
  ValidatorSet& validators_;

  std::map<LinkKey, Amount> link_stake_;
  std::map<LinkKey, std::vector<crypto::AccountId>> link_voters_;
  // validator -> votes cast (for slashing detection)
  std::unordered_map<crypto::AccountId, std::vector<CheckpointVote>>
      vote_history_;
  // epoch -> justified checkpoint hashes
  std::map<std::uint64_t, std::vector<Hash256>> justified_;

  std::uint64_t last_justified_epoch_ = 0;
  Hash256 last_justified_hash_;
  std::uint64_t last_finalized_epoch_ = 0;
  Hash256 last_finalized_hash_;
  std::uint64_t votes_processed_ = 0;
  std::uint64_t slashings_ = 0;
};

}  // namespace dlt::chain
