#include "chain/fast_sync.hpp"

namespace dlt::chain {

SyncPlan plan_full_sync(const Blockchain& source) {
  SyncPlan plan;
  for (std::uint32_t h = 0; h <= source.height(); ++h) {
    const Block* b = source.at_height(h);
    plan.header_bytes += b->header.serialized_size();
    plan.body_bytes +=
        b->serialized_size() - b->header.serialized_size();
    plan.txs_replayed += b->tx_count();
  }
  plan.pivot_height = 0;
  return plan;
}

Result<SyncPlan> plan_fast_sync(const Blockchain& source,
                                std::uint32_t pivot_offset) {
  if (source.params().tx_model != TxModel::kAccount)
    return make_error("unsupported", "fast sync needs the account model");

  SyncPlan plan;
  plan.pivot_height =
      source.height() > pivot_offset ? source.height() - pivot_offset : 0;

  for (std::uint32_t h = 0; h <= source.height(); ++h) {
    const Block* b = source.at_height(h);
    plan.header_bytes += b->header.serialized_size();
    if (h <= plan.pivot_height) {
      // Receipts only; transactions are never re-executed.
      plan.receipt_bytes +=
          b->tx_count() * source.params().receipt_bytes_per_tx;
    } else {
      plan.body_bytes +=
          b->serialized_size() - b->header.serialized_size();
      plan.txs_replayed += b->tx_count();
    }
  }

  const Block* pivot = source.at_height(plan.pivot_height);
  auto pivot_state = source.state_db().get(pivot->header.state_root);
  if (!pivot_state)
    return make_error("pruned-pivot",
                      "source pruned the pivot state version");
  auto [nodes, bytes] = pivot_state->trie().measure();
  plan.state_nodes = nodes;
  plan.state_bytes = bytes;
  return plan;
}

Result<WorldState> execute_fast_sync(const Blockchain& source,
                                     std::uint32_t pivot_offset) {
  auto plan = plan_fast_sync(source, pivot_offset);
  if (!plan) return plan.error();

  const Block* pivot = source.at_height(plan->pivot_height);
  auto pivot_state = source.state_db().get(pivot->header.state_root);
  if (!pivot_state) return make_error("pruned-pivot");

  // "Download" the state: rebuild a fresh trie from the wire entries, then
  // verify the reconstruction matches the pivot header's commitment.
  WorldState rebuilt;
  std::vector<std::pair<Hash256, Bytes>> entries;
  pivot_state->trie().for_each(
      [&entries](const crypto::Nibbles& key_nibbles, const Bytes& value) {
        Hash256 key;
        for (std::size_t i = 0; i + 1 < key_nibbles.size(); i += 2)
          key.v[i / 2] = static_cast<Byte>((key_nibbles[i] << 4) |
                                           key_nibbles[i + 1]);
        entries.emplace_back(key, value);
      });
  for (const auto& [key, value] : entries) {
    auto st = AccountState::decode(ByteView{value.data(), value.size()});
    if (!st) return make_error("corrupt-state-entry");
    rebuilt = rebuilt.with_account(key, *st);
  }

  if (rebuilt.root() != pivot->header.state_root)
    return make_error("state-root-mismatch",
                      "downloaded state fails verification");
  return rebuilt;
}

}  // namespace dlt::chain
