#include "chain/params.hpp"

namespace dlt::chain {

ChainParams bitcoin_like() {
  ChainParams p;
  p.name = "bitcoin-like";
  p.tx_model = TxModel::kUtxo;
  p.consensus = ConsensusKind::kProofOfWork;
  p.block_interval = 600.0;       // ~10 minutes (paper §VI-A)
  p.max_block_bytes = 1'000'000;  // 1 MB (paper §VI-A)
  p.block_gas_limit = 0;
  p.retarget_window = 2016;
  p.retarget_clamp = 4.0;
  p.confirmation_depth = 6;  // paper §IV-A
  return p;
}

ChainParams ethereum_like() {
  ChainParams p;
  p.name = "ethereum-like";
  p.tx_model = TxModel::kAccount;
  p.consensus = ConsensusKind::kProofOfWork;
  p.block_interval = 15.0;  // ~15 seconds (paper §VI-A)
  p.max_block_bytes = 0;    // capped by gas, not bytes
  p.block_gas_limit = 8'000'000;
  p.retarget_window = 1;  // Ethereum adjusts difficulty every block
  p.retarget_clamp = 1.05;
  p.block_reward = 5'0000'0000ULL;
  p.confirmation_depth = 11;  // paper §IV-A: five to eleven; conservative
  return p;
}

ChainParams pos_like() {
  ChainParams p = ethereum_like();
  p.name = "pos-like";
  p.consensus = ConsensusKind::kProofOfStake;
  p.block_interval = 4.0;  // paper §VI-A: "4 seconds or lower"
  p.epoch_length = 50;
  return p;
}

}  // namespace dlt::chain
