// Blocks and headers (paper §II-A, Fig. 1).
//
// "Blocks contain headers and transactions. Each block header, amongst
// other metadata, contains a reference to its predecessor in the form of
// the predecessor's hash."
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "chain/account_tx.hpp"
#include "chain/params.hpp"
#include "chain/transaction.hpp"
#include "crypto/digest_cache.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/merkle.hpp"
#include "support/bytes.hpp"

namespace dlt::chain {

using BlockHash = Hash256;

struct BlockHeader {
  std::uint32_t height = 0;
  BlockHash parent;              // zero for the genesis block
  Hash256 merkle_root;           // commits to the transaction list
  Hash256 state_root;            // account model: trie root after this block
  double timestamp = 0.0;        // simulated seconds since genesis
  double difficulty = 1.0;       // expected hash attempts (PoW)
  std::uint64_t nonce = 0;       // PoW solution
  crypto::AccountId proposer;    // coinbase recipient / PoS proposer
  std::uint64_t slot = 0;        // PoS slot number

  /// Serialization of all fields except the nonce: the PoW puzzle payload.
  Bytes pow_payload() const;
  /// Full canonical serialization (including nonce).
  Bytes serialize() const;
  std::size_t serialized_size() const { return kSerializedSize; }
  static constexpr std::size_t kSerializedSize =
      4 + 32 + 32 + 32 + 8 + 8 + 8 + 32 + 8;

  /// Block id: tagged hash of the full header. Memoized; mutating any
  /// field (including the nonce) after a call requires an explicit
  /// invalidate_digests().
  BlockHash hash() const;

  /// The digest the PoW target test applies to. The SHA-256 midstate over
  /// pow_payload() is memoized, so sweeping the nonce -- which is outside
  /// the payload -- costs only the 8-byte tail per candidate.
  Hash256 pow_digest() const;

  /// Drops the memoized header hash and PoW midstate.
  void invalidate_digests() {
    hash_memo_.invalidate();
    pow_memo_.reset();
  }

  bool is_genesis() const { return parent.is_zero(); }

 private:
  crypto::DigestCache hash_memo_;
  mutable std::optional<crypto::PowMidstate> pow_memo_;
};

/// True if `digest`, read as a 64-bit prefix, meets `difficulty` expected
/// tries. This is partial hash inversion with a fractional target, matching
/// Bitcoin's 256-bit target semantics at simulation precision.
bool meets_target(const Hash256& digest, double difficulty);

/// Body payload: one of the two transaction models.
using UtxoTxList = std::vector<UtxoTransaction>;
using AccountTxList = std::vector<AccountTransaction>;

class Block {
 public:
  BlockHeader header;
  std::variant<UtxoTxList, AccountTxList> txs;

  bool is_utxo() const { return std::holds_alternative<UtxoTxList>(txs); }
  const UtxoTxList& utxo_txs() const { return std::get<UtxoTxList>(txs); }
  UtxoTxList& utxo_txs() { return std::get<UtxoTxList>(txs); }
  const AccountTxList& account_txs() const {
    return std::get<AccountTxList>(txs);
  }
  AccountTxList& account_txs() { return std::get<AccountTxList>(txs); }

  std::size_t tx_count() const;

  /// Transaction ids in block order (Merkle leaves).
  std::vector<Hash256> tx_ids() const;

  /// Merkle root over tx_ids().
  Hash256 compute_merkle_root() const;

  /// Serialized size of header + all transactions (ledger-size accounting).
  std::size_t serialized_size() const;

  /// Total gas consumed (account model; 0 for UTXO blocks).
  std::uint64_t total_gas() const;

  BlockHash hash() const { return header.hash(); }
};

}  // namespace dlt::chain
