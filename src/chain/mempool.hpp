// Mempools: pending-transaction pools with fee prioritization.
//
// Paper §VI: "there were around 186,951 pending transactions in the Bitcoin
// network and around 22,473 pending in the Ethereum network" -- the pending
// backlog is the visible symptom of the throughput cap, and the throughput
// benches report exactly this queue depth over time.
// Admission control (ISSUE 10): both pools optionally run a byte-capacity
// fee market. With set_capacity(bytes), an add() that would overflow the
// cap evicts the lowest-fee-rate entries (newest among ties — the
// canonical tiebreak shared with core::AdmissionQueue) but only when the
// incoming fee rate is STRICTLY higher than every victim's; otherwise the
// add fails with code "mempool-full" (backpressure). Replacement
// (RBF / same-nonce) is opt-in via set_replace_by_fee so legacy
// conflict semantics stay intact by default. Evictions and replacements
// fire the evict handler so the cluster can retire lifecycle entries and
// keep admission.* counters reconciling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/account_tx.hpp"
#include "chain/state.hpp"
#include "chain/transaction.hpp"
#include "chain/utxo.hpp"
#include "support/result.hpp"

namespace dlt::chain {

/// Bitcoin-style mempool: validated against the UTXO set, prioritized by
/// fee rate (fee per serialized byte), conflict-aware.
class UtxoMempool {
 public:
  /// Validates and admits a transaction. Rejects double spends against
  /// both the chainstate and already-pooled transactions.
  Status add(const UtxoTransaction& tx, const UtxoSet& utxo,
             std::uint32_t height, crypto::SignatureCache* sigcache = nullptr);

  /// Greedy selection by fee rate under a byte budget (block building).
  /// Walks the incrementally maintained fee-rate index — no per-call sort.
  /// Equal fee rates break ties by admission order (FIFO), a canonical
  /// order the old sort-the-whole-pool implementation left unspecified.
  std::vector<UtxoTransaction> select(std::uint64_t max_bytes) const;

  /// Drops transactions included in a connected block, plus any pool
  /// entries their inputs now conflict with.
  void remove_included(const std::vector<UtxoTransaction>& txs);

  /// Re-admits transactions from a disconnected (orphaned) block --
  /// paper §IV-A: "orphaned transactions need to be included in a new
  /// block". Invalid ones (e.g. re-mined elsewhere) are silently dropped.
  void reinject(const std::vector<UtxoTransaction>& txs, const UtxoSet& utxo,
                std::uint32_t height,
                crypto::SignatureCache* sigcache = nullptr);

  bool contains(const TxId& id) const { return pool_.count(id) != 0; }
  std::size_t size() const { return pool_.size(); }
  std::uint64_t pending_bytes() const { return pending_bytes_; }

  /// Byte-capacity fee market (0 = unlimited, the historical behaviour).
  void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }
  std::uint64_t capacity() const { return capacity_; }
  /// Opt-in replace-by-fee: a conflicting tx whose fee rate strictly
  /// exceeds EVERY pooled conflict's replaces them (conflicts and their
  /// pooled descendants are evicted). Off by default: conflicts reject
  /// with "mempool-conflict".
  void set_replace_by_fee(bool on) { replace_by_fee_ = on; }
  /// Called once per transaction displaced by the fee market (capacity
  /// eviction, replacement cascade, or a capacity-refused reinject) —
  /// NOT for inclusion-driven removals.
  using EvictHandler = std::function<void(const UtxoTransaction&)>;
  void set_evict_handler(EvictHandler fn) { evict_handler_ = std::move(fn); }

 private:
  struct Entry {
    UtxoTransaction tx;
    Amount fee = 0;
    std::size_t bytes = 0;
    std::uint64_t seq = 0;  // admission order, the fee-rate tiebreak
    double fee_rate() const {
      return static_cast<double>(fee) / static_cast<double>(bytes);
    }
  };
  // Selection order: fee rate descending, admission sequence ascending.
  struct SelKey {
    double rate;
    std::uint64_t seq;
  };
  struct SelOrder {
    bool operator()(const SelKey& a, const SelKey& b) const {
      if (a.rate != b.rate) return a.rate > b.rate;
      return a.seq < b.seq;
    }
  };

  void drop_entry(std::unordered_map<TxId, Entry>::iterator it);
  /// Fee-market removal: drops `id` and (recursively) any pooled
  /// descendants spending its outputs — children first, in output-index
  /// order — firing the evict handler per dropped tx.
  void evict_tx(const TxId& id);
  /// Plans the eviction closure of `id`: marks it and its pooled
  /// descendants in `planned`, returning the bytes they occupy. Pure —
  /// lets add() verify a capacity plan frees enough before evicting.
  std::uint64_t plan_closure(const TxId& id,
                             std::unordered_set<TxId>& planned) const;

  std::unordered_map<TxId, Entry> pool_;
  std::unordered_map<Outpoint, TxId> claimed_;  // input -> claiming tx
  // Fee-rate-ordered view of pool_ (pointees are stable: pool_ is
  // node-based), kept in sync by add/drop_entry.
  std::map<SelKey, const Entry*, SelOrder> by_rate_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t capacity_ = 0;  // 0 = unlimited
  bool replace_by_fee_ = false;
  EvictHandler evict_handler_;
};

/// Ethereum-style mempool: per-sender nonce ordering, gas-price priority.
class AccountMempool {
 public:
  /// Admits a transaction whose nonce is the sender's next pending nonce
  /// (contiguous queues per sender; gaps are rejected as in geth's default).
  Status add(const AccountTransaction& tx, const WorldState& state,
             crypto::SignatureCache* sigcache = nullptr);

  /// Selects highest-gas-price executable transactions under the block gas
  /// limit, never violating per-sender nonce order. Candidate heads are
  /// kept in a heap keyed (gas price descending, sender id ascending) —
  /// O(log senders) per pick instead of a full cursor scan, with a
  /// canonical tie order the old scan left to hash-map iteration.
  std::vector<AccountTransaction> select(std::uint64_t gas_limit,
                                         const WorldState& state) const;

  void remove_included(const std::vector<AccountTransaction>& txs);
  void reinject(const std::vector<AccountTransaction>& txs,
                const WorldState& state,
                crypto::SignatureCache* sigcache = nullptr);
  /// Drops entries made invalid by the current state (stale nonces).
  void revalidate(const WorldState& state);

  bool contains(const Hash256& id) const;
  /// True when `sender` has a pooled transaction at `nonce` (evict
  /// handlers use this to tell a replacement — slot still occupied —
  /// from a capacity eviction).
  bool contains_nonce(const crypto::AccountId& sender,
                      std::uint64_t nonce) const;
  std::size_t size() const;
  std::uint64_t pending_gas() const;
  std::uint64_t pending_bytes() const { return pending_bytes_; }

  /// Byte-capacity fee market (0 = unlimited). Capacity victims are
  /// per-sender queue TAILS only (never interior nonces — evicting those
  /// would orphan the rest of the queue), chosen by lowest gas price with
  /// newest admission (highest seq) breaking ties.
  void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }
  std::uint64_t capacity() const { return capacity_; }
  /// Opt-in same-nonce replacement: a strictly higher gas price replaces
  /// the pooled tx at that nonce. Off by default ("duplicate-nonce").
  void set_replacement(bool on) { replacement_ = on; }
  using EvictHandler = std::function<void(const AccountTransaction&)>;
  void set_evict_handler(EvictHandler fn) { evict_handler_ = std::move(fn); }

 private:
  struct Entry {
    AccountTransaction tx;
    std::uint64_t seq = 0;    // admission order, the eviction tiebreak
    std::uint64_t bytes = 0;  // serialized size, cached
  };

  std::uint64_t entry_bytes(const AccountTransaction& tx) const;
  void note_drop(const Entry& e) { pending_bytes_ -= e.bytes; }

  // sender -> (nonce -> entry), nonce-sorted.
  std::unordered_map<crypto::AccountId, std::map<std::uint64_t, Entry>>
      by_sender_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t capacity_ = 0;  // 0 = unlimited
  bool replacement_ = false;
  EvictHandler evict_handler_;
};

}  // namespace dlt::chain
