#include "scaling/sharding.hpp"

#include <algorithm>
#include <cassert>

namespace dlt::scaling {

std::size_t ShardedLedger::shard_of(const crypto::AccountId& account) const {
  std::uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i)
    prefix = (prefix << 8) | account.v[static_cast<std::size_t>(i)];
  return prefix % params_.shard_count;
}

void ShardedLedger::credit(const crypto::AccountId& account,
                           std::uint64_t amount) {
  shards_[shard_of(account)].balances[account] += amount;
}

std::uint64_t ShardedLedger::balance_of(
    const crypto::AccountId& account) const {
  const Shard& shard = shards_[shard_of(account)];
  auto it = shard.balances.find(account);
  return it == shard.balances.end() ? 0 : it->second;
}

Result<bool> ShardedLedger::transfer(const crypto::AccountId& from,
                                     const crypto::AccountId& to,
                                     std::uint64_t amount) {
  const std::size_t src = shard_of(from);
  const std::size_t dst = shard_of(to);
  Shard& shard = shards_[src];

  // Admission check against the *current* balance; queued debits may still
  // fail at seal time, which run_op handles by dropping the op.
  auto bal = shard.balances.find(from);
  if (bal == shard.balances.end() || bal->second < amount)
    return make_error("insufficient-balance");

  ++transfers_total_;
  if (src == dst) {
    shard.queue.push_back(
        Op{Op::Kind::kTransfer, from, to, amount, src});
    return false;
  }
  ++transfers_cross_;
  shard.queue.push_back(Op{Op::Kind::kDebitAndEmit, from, to, amount, dst});
  return true;
}

void ShardedLedger::run_op(std::size_t shard_index, const Op& op,
                           std::vector<std::pair<std::size_t, Op>>& outbox) {
  Shard& shard = shards_[shard_index];
  switch (op.kind) {
    case Op::Kind::kTransfer: {
      auto bal = shard.balances.find(op.from);
      if (bal == shard.balances.end() || bal->second < op.amount) return;
      bal->second -= op.amount;
      shard.balances[op.to] += op.amount;
      break;
    }
    case Op::Kind::kDebitAndEmit: {
      auto bal = shard.balances.find(op.from);
      if (bal == shard.balances.end() || bal->second < op.amount) return;
      bal->second -= op.amount;
      ++shard.stats.receipts_emitted;
      // The receipt becomes redeemable on the destination shard in a
      // future block (cross-shard latency >= one interval).
      Op redeem{Op::Kind::kRedeem, op.from, op.to, op.amount, op.dest_shard};
      outbox.emplace_back(op.dest_shard, redeem);
      break;
    }
    case Op::Kind::kRedeem: {
      shard.balances[op.to] += op.amount;
      ++shard.stats.receipts_redeemed;
      break;
    }
  }
}

void ShardedLedger::seal_round() {
  ++rounds_;
  std::vector<std::pair<std::size_t, Op>> outbox;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = shards_[k];
    shard.stats.queue_peak =
        std::max<std::uint64_t>(shard.stats.queue_peak, shard.queue.size());
    std::uint64_t budget = params_.block_tx_capacity;
    while (budget > 0 && !shard.queue.empty()) {
      const Op op = shard.queue.front();
      shard.queue.pop_front();
      run_op(k, op, outbox);
      ++shard.stats.ops_processed;
      --budget;
    }
    ++shard.stats.blocks_sealed;
  }
  // Receipts land after the round so redemption is strictly later.
  for (auto& [dest, op] : outbox) shards_[dest].queue.push_back(op);
}

std::uint64_t ShardedLedger::pending_ops() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.queue.size();
  return n;
}

std::uint64_t ShardedLedger::total_supply() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) {
    for (const auto& [account, balance] : s.balances) sum += balance;
    // In-flight cross-shard value lives in queued redeem receipts.
    for (const Op& op : s.queue)
      if (op.kind == Op::Kind::kRedeem) sum += op.amount;
  }
  return sum;
}

ShardStats ShardedLedger::aggregate_stats() const {
  ShardStats agg;
  for (const Shard& s : shards_) {
    agg.blocks_sealed += s.stats.blocks_sealed;
    agg.ops_processed += s.stats.ops_processed;
    agg.receipts_emitted += s.stats.receipts_emitted;
    agg.receipts_redeemed += s.stats.receipts_redeemed;
    agg.queue_peak = std::max(agg.queue_peak, s.stats.queue_peak);
  }
  return agg;
}

double ShardedLedger::cross_shard_fraction() const {
  if (transfers_total_ == 0) return 0.0;
  return static_cast<double>(transfers_cross_) /
         static_cast<double>(transfers_total_);
}

}  // namespace dlt::scaling
