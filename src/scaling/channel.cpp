#include "scaling/channel.hpp"

#include <vector>

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::scaling {

Hash256 ChannelState::sighash() const {
  Writer w;
  w.fixed(channel_id);
  w.u64(sequence);
  w.u64(balance_a);
  w.u64(balance_b);
  return crypto::tagged_hash("dlt/channel-state",
                             ByteView{w.bytes().data(), w.size()});
}

bool SignedState::verify(std::uint64_t pubkey_a,
                         std::uint64_t pubkey_b) const {
  const Hash256 digest = state.sighash();
  return crypto::verify(pubkey_a, digest.view(), sig_a) &&
         crypto::verify(pubkey_b, digest.view(), sig_b);
}

PaymentChannel::PaymentChannel(const crypto::KeyPair& a,
                               const crypto::KeyPair& b, Amount deposit_a,
                               Amount deposit_b, Rng& rng)
    : a_(a), b_(b), deposit_a_(deposit_a), deposit_b_(deposit_b) {
  Writer w;
  w.u64(a.public_key());
  w.u64(b.public_key());
  w.u64(deposit_a);
  w.u64(deposit_b);
  w.u64(rng.next());  // channel nonce
  current_.state.channel_id = crypto::tagged_hash(
      "dlt/channel-id", ByteView{w.bytes().data(), w.size()});
  current_.state.sequence = 0;
  current_.state.balance_a = deposit_a;
  current_.state.balance_b = deposit_b;
  const Hash256 digest = current_.state.sighash();
  current_.sig_a = a_.sign(digest.view(), rng);
  current_.sig_b = b_.sign(digest.view(), rng);
  history_.push_back(current_);
}

Status PaymentChannel::pay(Amount amount, bool from_a, Rng& rng) {
  ChannelState next = current_.state;
  if (from_a) {
    if (next.balance_a < amount)
      return make_error("insufficient-channel-balance");
    next.balance_a -= amount;
    next.balance_b += amount;
  } else {
    if (next.balance_b < amount)
      return make_error("insufficient-channel-balance");
    next.balance_b -= amount;
    next.balance_a += amount;
  }
  next.sequence = current_.state.sequence + 1;

  SignedState signed_next;
  signed_next.state = next;
  const Hash256 digest = next.sighash();
  signed_next.sig_a = a_.sign(digest.view(), rng);
  signed_next.sig_b = b_.sign(digest.view(), rng);
  current_ = signed_next;
  history_.push_back(signed_next);
  ++payments_;
  return Status::success();
}

std::optional<SignedState> PaymentChannel::state_at(
    std::uint64_t sequence) const {
  for (const SignedState& s : history_)
    if (s.state.sequence == sequence) return s;
  return std::nullopt;
}

SignedState PaymentChannel::resolve_dispute(
    const SignedState& claim, const std::optional<SignedState>& counter,
    std::uint64_t pubkey_a, std::uint64_t pubkey_b) {
  // The dispute contract: highest valid sequence wins the window.
  if (counter && counter->verify(pubkey_a, pubkey_b) &&
      counter->state.sequence > claim.state.sequence) {
    return *counter;
  }
  return claim;
}

chain::UtxoTransaction PaymentChannel::make_funding_tx(
    const std::vector<std::pair<chain::Outpoint, chain::TxOut>>& coins_a,
    const std::vector<std::pair<chain::Outpoint, chain::TxOut>>& coins_b,
    Rng& rng) const {
  chain::UtxoTransaction tx;
  std::vector<crypto::KeyPair> keys;
  Amount in_a = 0, in_b = 0;
  for (const auto& [op, out] : coins_a) {
    tx.inputs.push_back(chain::TxIn{op, a_.public_key(), {}});
    keys.push_back(a_);
    in_a += out.value;
  }
  for (const auto& [op, out] : coins_b) {
    tx.inputs.push_back(chain::TxIn{op, b_.public_key(), {}});
    keys.push_back(b_);
    in_b += out.value;
  }
  // Lock the channel capacity to a joint authority. A real chain uses a
  // 2-of-2 multisig script; our UTXO model has single-key outputs, so the
  // joint authority is a key both parties derive from the channel id.
  const crypto::KeyPair joint = crypto::KeyPair::from_seed(
      crypto::hash_prefix_u64(current_.state.channel_id));
  tx.outputs.push_back(chain::TxOut{capacity(), joint.account_id()});
  // Each party gets its own change back.
  if (in_a > deposit_a_)
    tx.outputs.push_back(chain::TxOut{in_a - deposit_a_, a_.account_id()});
  if (in_b > deposit_b_)
    tx.outputs.push_back(chain::TxOut{in_b - deposit_b_, b_.account_id()});
  tx.sign_all(keys, rng);
  return tx;
}

chain::UtxoTransaction PaymentChannel::make_settlement_tx(
    const chain::Outpoint& funding, const SignedState& final_state,
    Rng& rng) const {
  chain::UtxoTransaction tx;
  // Spend the joint-authority funding output (see make_funding_tx).
  const crypto::KeyPair joint = crypto::KeyPair::from_seed(
      crypto::hash_prefix_u64(final_state.state.channel_id));
  tx.inputs.push_back(chain::TxIn{funding, joint.public_key(), {}});
  if (final_state.state.balance_a > 0)
    tx.outputs.push_back(
        chain::TxOut{final_state.state.balance_a, a_.account_id()});
  if (final_state.state.balance_b > 0)
    tx.outputs.push_back(
        chain::TxOut{final_state.state.balance_b, b_.account_id()});
  tx.sign_all({joint}, rng);
  return tx;
}

}  // namespace dlt::scaling
