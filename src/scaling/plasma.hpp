// Plasma-style nested chains (paper §VI-A).
//
// "The framework creates a nested blockchain structure by the use of smart
// contracts with a root chain being the Ethereum main chain... Only Merkle
// roots created in the sidechains are periodically broadcasted to the main
// network during non-faulty states allowing scalable transactions. For
// faulty states, stakeholders need to display proof of fraud and the
// Byzantine node gets penalized."
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"
#include "support/result.hpp"

namespace dlt::scaling {

using Amount = std::uint64_t;

/// A child-chain transfer (the only child-chain operation we model).
struct PlasmaTx {
  crypto::AccountId from;
  crypto::AccountId to;
  Amount amount = 0;
  std::uint64_t nonce = 0;
  std::uint64_t pubkey = 0;
  crypto::Signature signature{};

  Hash256 id() const;
  Hash256 sighash() const;
  void sign(const crypto::KeyPair& key, Rng& rng);
  bool verify_signature() const;
};

struct PlasmaBlock {
  std::uint64_t number = 0;
  std::vector<PlasmaTx> txs;
  Hash256 merkle_root;  // what gets committed on the root chain

  Hash256 compute_root() const;
};

/// The root-chain contract: holds deposits and the operator's bond,
/// records per-block Merkle roots, adjudicates exits and fraud proofs.
class PlasmaContract {
 public:
  explicit PlasmaContract(Amount operator_bond)
      : operator_bond_(operator_bond) {}

  void deposit(const crypto::AccountId& user, Amount amount);
  Amount deposited(const crypto::AccountId& user) const;
  Amount total_deposits() const { return total_deposits_; }
  Amount operator_bond() const { return operator_bond_; }
  bool operator_slashed() const { return operator_slashed_; }

  /// Operator commits a child-block root. Root-chain cost: one tx carrying
  /// 32 bytes, regardless of how many child transactions it commits.
  void commit(std::uint64_t block_number, const Hash256& root);
  std::optional<Hash256> committed_root(std::uint64_t block_number) const;
  std::size_t commitments() const { return roots_.size(); }

  /// Exit: a user leaves with `amount`, proving a transfer to them was
  /// included in a committed block. Verifies the Merkle proof on-chain.
  Status exit(const crypto::AccountId& user, Amount amount,
              std::uint64_t block_number, const PlasmaTx& tx,
              std::size_t tx_index, const crypto::MerkleProof& proof);

  /// Fraud proof: demonstrates the operator committed a block containing
  /// an invalid transaction (here: a bad signature proven by inclusion).
  /// On success the operator's bond is burned.
  Status challenge(std::uint64_t block_number, const PlasmaTx& bad_tx,
                   std::size_t tx_index, const crypto::MerkleProof& proof);

 private:
  std::map<crypto::AccountId, Amount> deposits_;
  std::map<std::uint64_t, Hash256> roots_;
  Amount total_deposits_ = 0;
  Amount operator_bond_;
  bool operator_slashed_ = false;
};

/// The child-chain operator: accepts transfers, seals blocks, commits
/// roots. A dishonest operator can be constructed for fraud-proof tests.
class PlasmaOperator {
 public:
  PlasmaOperator(PlasmaContract& contract, std::size_t block_tx_limit)
      : contract_(contract), block_tx_limit_(block_tx_limit) {}

  /// Child-chain balance bookkeeping starts from root-chain deposits.
  void sync_deposit(const crypto::AccountId& user, Amount amount);

  /// Accepts a transfer into the pending set (validated).
  Status submit(const PlasmaTx& tx);

  /// Seals up to block_tx_limit pending txs into a block and commits its
  /// root. Returns the block (empty optional if nothing pending).
  std::optional<PlasmaBlock> seal_and_commit();

  /// A malicious seal: includes `forged` (invalid) transaction anyway.
  PlasmaBlock seal_with_forgery(const PlasmaTx& forged);

  Amount balance_of(const crypto::AccountId& user) const;
  const std::vector<PlasmaBlock>& blocks() const { return blocks_; }
  std::size_t pending() const { return pending_.size(); }

  /// Inclusion proof for tx `index` of block `number` (for exits).
  Result<crypto::MerkleProof> prove(std::uint64_t block_number,
                                    std::size_t index) const;

 private:
  PlasmaContract& contract_;
  std::size_t block_tx_limit_;
  std::map<crypto::AccountId, Amount> balances_;
  std::map<crypto::AccountId, std::uint64_t> nonces_;
  std::vector<PlasmaTx> pending_;
  std::vector<PlasmaBlock> blocks_;
};

}  // namespace dlt::scaling
