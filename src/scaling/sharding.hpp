// Sharding (paper §VI-A).
//
// "Sharding splits the network in K partitions, no longer forcing all
// nodes in the network to process all incoming transactions. Every shard
// k, in its simplest form, has its own transaction history and the effects
// of a transition in shard k would affect only the state of k. In a more
// complex scenario, cross shard communication is available, meaning that a
// transaction from k can trigger an event in m."
//
// Each shard seals a block of at most `block_tx_capacity` operations every
// `block_interval`. A cross-shard transfer consumes an operation on the
// source shard (debit + receipt) and, one block later at the earliest, an
// operation on the destination shard (receipt redemption + credit) --
// the standard receipt-based two-phase scheme the Ethereum sharding FAQ
// describes. The API routes transparently: callers never name shards.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "crypto/keys.hpp"
#include "support/result.hpp"
#include "support/stats.hpp"

namespace dlt::scaling {

struct ShardParams {
  std::size_t shard_count = 4;
  std::uint64_t block_tx_capacity = 100;  // operations per shard block
  double block_interval = 15.0;           // seconds between shard blocks
};

struct ShardStats {
  std::uint64_t blocks_sealed = 0;
  std::uint64_t ops_processed = 0;
  std::uint64_t receipts_emitted = 0;
  std::uint64_t receipts_redeemed = 0;
  std::uint64_t queue_peak = 0;
};

class ShardedLedger {
 public:
  explicit ShardedLedger(ShardParams params) : params_(params) {
    shards_.resize(params_.shard_count);
  }

  const ShardParams& params() const { return params_; }

  /// Deterministic account placement: shard = first bytes of id mod K.
  std::size_t shard_of(const crypto::AccountId& account) const;

  /// Mints an initial balance (genesis allocation on the home shard).
  void credit(const crypto::AccountId& account, std::uint64_t amount);
  std::uint64_t balance_of(const crypto::AccountId& account) const;

  /// Submits a transfer; routing (intra- vs cross-shard) is transparent.
  /// Returns whether the transfer was cross-shard.
  Result<bool> transfer(const crypto::AccountId& from,
                        const crypto::AccountId& to, std::uint64_t amount);

  /// Advances time by one block interval: every shard seals one block.
  void seal_round();

  std::uint64_t pending_ops() const;
  std::uint64_t total_supply() const;
  const ShardStats& stats(std::size_t shard) const {
    return shards_[shard].stats;
  }
  ShardStats aggregate_stats() const;
  std::uint64_t rounds() const { return rounds_; }

  /// Fraction [0,1] of submitted transfers that were cross-shard.
  double cross_shard_fraction() const;

 private:
  struct Receipt {
    crypto::AccountId to;
    std::uint64_t amount = 0;
    std::size_t dest_shard = 0;
  };
  struct Op {
    enum class Kind { kTransfer, kDebitAndEmit, kRedeem } kind;
    crypto::AccountId from;
    crypto::AccountId to;
    std::uint64_t amount = 0;
    std::size_t dest_shard = 0;
  };
  struct Shard {
    std::unordered_map<crypto::AccountId, std::uint64_t> balances;
    std::deque<Op> queue;
    ShardStats stats;
  };

  void run_op(std::size_t shard_index, const Op& op,
              std::vector<std::pair<std::size_t, Op>>& outbox);

  ShardParams params_;
  std::vector<Shard> shards_;
  std::uint64_t rounds_ = 0;
  std::uint64_t transfers_total_ = 0;
  std::uint64_t transfers_cross_ = 0;
};

}  // namespace dlt::scaling
