// Off-chain payment channels (paper §VI-A; Lightning / Raiden).
//
// "The solution revolves around creating an off chain channel to which a
// prepaid amount is locked in for the lifetime of the channel. The
// involved parties are able to run micro transactions at high volume and
// speed, avoiding the transaction cap of the network. Any party may choose
// to leave the channel, after which the final account balances are
// recorded on chain and the channel is closed."
#pragma once

#include <cstdint>
#include <optional>

#include "chain/transaction.hpp"
#include "crypto/keys.hpp"
#include "support/result.hpp"

namespace dlt::scaling {

using Amount = chain::Amount;

/// A co-signed channel state: the authoritative off-chain balance split.
struct ChannelState {
  Hash256 channel_id;
  std::uint64_t sequence = 0;  // monotonically increasing
  Amount balance_a = 0;
  Amount balance_b = 0;

  Hash256 sighash() const;
};

struct SignedState {
  ChannelState state;
  crypto::Signature sig_a{};
  crypto::Signature sig_b{};

  /// Both signatures valid under the channel parties' keys.
  bool verify(std::uint64_t pubkey_a, std::uint64_t pubkey_b) const;
};

/// One end of a bidirectional payment channel. Each party runs its own
/// instance; states are exchanged and co-signed out of band (instantly, in
/// simulation terms -- that is the point of channels).
class PaymentChannel {
 public:
  /// Opens a channel funded with `deposit_a` + `deposit_b`.
  PaymentChannel(const crypto::KeyPair& a, const crypto::KeyPair& b,
                 Amount deposit_a, Amount deposit_b, Rng& rng);

  const Hash256& id() const { return current_.state.channel_id; }
  Amount balance_a() const { return current_.state.balance_a; }
  Amount balance_b() const { return current_.state.balance_b; }
  Amount capacity() const { return balance_a() + balance_b(); }
  std::uint64_t sequence() const { return current_.state.sequence; }
  std::uint64_t payments_made() const { return payments_; }

  /// Off-chain payment a->b (positive) or b->a (negative direction flag).
  Status pay(Amount amount, bool from_a, Rng& rng);

  const SignedState& latest() const { return current_; }

  /// A stale state retained by a cheater (testing the dispute path).
  std::optional<SignedState> state_at(std::uint64_t sequence) const;

  // ---- Settlement --------------------------------------------------------
  /// Cooperative close: final balances, 1 on-chain transaction.
  SignedState cooperative_close() const { return current_; }

  /// Unilateral close: a party publishes `claim`; the counterparty may
  /// overturn it with any strictly newer co-signed state within the
  /// dispute window. Returns the state that settles.
  static SignedState resolve_dispute(const SignedState& claim,
                                     const std::optional<SignedState>& counter,
                                     std::uint64_t pubkey_a,
                                     std::uint64_t pubkey_b);

  /// On-chain funding transaction spending the two parties' outpoints into
  /// a joint 2-of-2-style output (owner = channel id as a script hash).
  chain::UtxoTransaction make_funding_tx(
      const std::vector<std::pair<chain::Outpoint, chain::TxOut>>& coins_a,
      const std::vector<std::pair<chain::Outpoint, chain::TxOut>>& coins_b,
      Rng& rng) const;

  /// On-chain settlement paying each party its final balance.
  chain::UtxoTransaction make_settlement_tx(const chain::Outpoint& funding,
                                            const SignedState& final_state,
                                            Rng& rng) const;

 private:
  crypto::KeyPair a_;
  crypto::KeyPair b_;
  Amount deposit_a_ = 0;
  Amount deposit_b_ = 0;
  SignedState current_;
  std::vector<SignedState> history_;  // what a cheater could replay
  std::uint64_t payments_ = 0;
};

}  // namespace dlt::scaling
