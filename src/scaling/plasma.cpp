#include "scaling/plasma.hpp"

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::scaling {

Hash256 PlasmaTx::sighash() const {
  Writer w;
  w.fixed(from);
  w.fixed(to);
  w.u64(amount);
  w.u64(nonce);
  return crypto::tagged_hash("dlt/plasma-tx",
                             ByteView{w.bytes().data(), w.size()});
}

Hash256 PlasmaTx::id() const {
  Writer w;
  w.fixed(from);
  w.fixed(to);
  w.u64(amount);
  w.u64(nonce);
  w.u64(pubkey);
  w.u64(signature.r);
  w.u64(signature.s);
  return crypto::tagged_hash("dlt/plasma-txid",
                             ByteView{w.bytes().data(), w.size()});
}

void PlasmaTx::sign(const crypto::KeyPair& key, Rng& rng) {
  from = key.account_id();
  pubkey = key.public_key();
  signature = key.sign(sighash().view(), rng);
}

bool PlasmaTx::verify_signature() const {
  if (crypto::account_of(pubkey) != from) return false;
  return crypto::verify(pubkey, sighash().view(), signature);
}

Hash256 PlasmaBlock::compute_root() const {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const PlasmaTx& tx : txs) leaves.push_back(tx.id());
  return crypto::MerkleTree::compute_root(std::move(leaves));
}

void PlasmaContract::deposit(const crypto::AccountId& user, Amount amount) {
  deposits_[user] += amount;
  total_deposits_ += amount;
}

Amount PlasmaContract::deposited(const crypto::AccountId& user) const {
  auto it = deposits_.find(user);
  return it == deposits_.end() ? 0 : it->second;
}

void PlasmaContract::commit(std::uint64_t block_number, const Hash256& root) {
  roots_[block_number] = root;
}

std::optional<Hash256> PlasmaContract::committed_root(
    std::uint64_t block_number) const {
  auto it = roots_.find(block_number);
  if (it == roots_.end()) return std::nullopt;
  return it->second;
}

Status PlasmaContract::exit(const crypto::AccountId& user, Amount amount,
                            std::uint64_t block_number, const PlasmaTx& tx,
                            std::size_t tx_index,
                            const crypto::MerkleProof& proof) {
  auto root = committed_root(block_number);
  if (!root) return make_error("unknown-block");
  if (!(tx.to == user)) return make_error("not-beneficiary");
  if (tx.amount < amount) return make_error("amount-exceeds-proof");
  if (!crypto::MerkleTree::verify(*root, tx.id(), tx_index, proof))
    return make_error("bad-proof");
  if (total_deposits_ < amount)
    return make_error("insolvent", "exits exceed deposits");
  total_deposits_ -= amount;
  deposits_[user] += 0;  // the exit pays out on the root chain directly
  return Status::success();
}

Status PlasmaContract::challenge(std::uint64_t block_number,
                                 const PlasmaTx& bad_tx, std::size_t tx_index,
                                 const crypto::MerkleProof& proof) {
  auto root = committed_root(block_number);
  if (!root) return make_error("unknown-block");
  if (!crypto::MerkleTree::verify(*root, bad_tx.id(), tx_index, proof))
    return make_error("bad-proof", "tx not in committed block");
  if (bad_tx.verify_signature())
    return make_error("no-fraud", "transaction is actually valid");
  // Fraud proven: "the Byzantine node gets penalized" (§VI-A).
  operator_slashed_ = true;
  operator_bond_ = 0;
  return Status::success();
}

void PlasmaOperator::sync_deposit(const crypto::AccountId& user,
                                  Amount amount) {
  contract_.deposit(user, amount);
  balances_[user] += amount;
}

Status PlasmaOperator::submit(const PlasmaTx& tx) {
  if (!tx.verify_signature()) return make_error("bad-signature");
  auto nonce = nonces_.find(tx.from);
  const std::uint64_t expected = nonce == nonces_.end() ? 0 : nonce->second;
  if (tx.nonce != expected) return make_error("bad-nonce");
  auto bal = balances_.find(tx.from);
  if (bal == balances_.end() || bal->second < tx.amount)
    return make_error("insufficient-balance");

  bal->second -= tx.amount;
  balances_[tx.to] += tx.amount;
  nonces_[tx.from] = expected + 1;
  pending_.push_back(tx);
  return Status::success();
}

std::optional<PlasmaBlock> PlasmaOperator::seal_and_commit() {
  if (pending_.empty()) return std::nullopt;
  PlasmaBlock block;
  block.number = blocks_.size();
  const std::size_t take = std::min(block_tx_limit_, pending_.size());
  block.txs.assign(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  block.merkle_root = block.compute_root();
  contract_.commit(block.number, block.merkle_root);
  blocks_.push_back(block);
  return block;
}

PlasmaBlock PlasmaOperator::seal_with_forgery(const PlasmaTx& forged) {
  PlasmaBlock block;
  block.number = blocks_.size();
  block.txs = pending_;
  block.txs.push_back(forged);
  pending_.clear();
  block.merkle_root = block.compute_root();
  contract_.commit(block.number, block.merkle_root);
  blocks_.push_back(block);
  return block;
}

Amount PlasmaOperator::balance_of(const crypto::AccountId& user) const {
  auto it = balances_.find(user);
  return it == balances_.end() ? 0 : it->second;
}

Result<crypto::MerkleProof> PlasmaOperator::prove(std::uint64_t block_number,
                                                  std::size_t index) const {
  if (block_number >= blocks_.size()) return make_error("unknown-block");
  const PlasmaBlock& block = blocks_[block_number];
  std::vector<Hash256> leaves;
  leaves.reserve(block.txs.size());
  for (const PlasmaTx& tx : block.txs) leaves.push_back(tx.id());
  crypto::MerkleTree tree(std::move(leaves));
  return tree.prove(index);
}

}  // namespace dlt::scaling
