file(REMOVE_RECURSE
  "CMakeFiles/dlt_scaling.dir/channel.cpp.o"
  "CMakeFiles/dlt_scaling.dir/channel.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/plasma.cpp.o"
  "CMakeFiles/dlt_scaling.dir/plasma.cpp.o.d"
  "CMakeFiles/dlt_scaling.dir/sharding.cpp.o"
  "CMakeFiles/dlt_scaling.dir/sharding.cpp.o.d"
  "libdlt_scaling.a"
  "libdlt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
