
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scaling/channel.cpp" "src/scaling/CMakeFiles/dlt_scaling.dir/channel.cpp.o" "gcc" "src/scaling/CMakeFiles/dlt_scaling.dir/channel.cpp.o.d"
  "/root/repo/src/scaling/plasma.cpp" "src/scaling/CMakeFiles/dlt_scaling.dir/plasma.cpp.o" "gcc" "src/scaling/CMakeFiles/dlt_scaling.dir/plasma.cpp.o.d"
  "/root/repo/src/scaling/sharding.cpp" "src/scaling/CMakeFiles/dlt_scaling.dir/sharding.cpp.o" "gcc" "src/scaling/CMakeFiles/dlt_scaling.dir/sharding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/dlt_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
