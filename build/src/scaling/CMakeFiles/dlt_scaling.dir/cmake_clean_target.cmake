file(REMOVE_RECURSE
  "libdlt_scaling.a"
)
