file(REMOVE_RECURSE
  "CMakeFiles/dlt_net.dir/network.cpp.o"
  "CMakeFiles/dlt_net.dir/network.cpp.o.d"
  "libdlt_net.a"
  "libdlt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
