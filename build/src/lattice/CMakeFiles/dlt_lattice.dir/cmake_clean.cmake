file(REMOVE_RECURSE
  "CMakeFiles/dlt_lattice.dir/block.cpp.o"
  "CMakeFiles/dlt_lattice.dir/block.cpp.o.d"
  "CMakeFiles/dlt_lattice.dir/ledger.cpp.o"
  "CMakeFiles/dlt_lattice.dir/ledger.cpp.o.d"
  "CMakeFiles/dlt_lattice.dir/node.cpp.o"
  "CMakeFiles/dlt_lattice.dir/node.cpp.o.d"
  "CMakeFiles/dlt_lattice.dir/voting.cpp.o"
  "CMakeFiles/dlt_lattice.dir/voting.cpp.o.d"
  "libdlt_lattice.a"
  "libdlt_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
