
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/block.cpp" "src/lattice/CMakeFiles/dlt_lattice.dir/block.cpp.o" "gcc" "src/lattice/CMakeFiles/dlt_lattice.dir/block.cpp.o.d"
  "/root/repo/src/lattice/ledger.cpp" "src/lattice/CMakeFiles/dlt_lattice.dir/ledger.cpp.o" "gcc" "src/lattice/CMakeFiles/dlt_lattice.dir/ledger.cpp.o.d"
  "/root/repo/src/lattice/node.cpp" "src/lattice/CMakeFiles/dlt_lattice.dir/node.cpp.o" "gcc" "src/lattice/CMakeFiles/dlt_lattice.dir/node.cpp.o.d"
  "/root/repo/src/lattice/voting.cpp" "src/lattice/CMakeFiles/dlt_lattice.dir/voting.cpp.o" "gcc" "src/lattice/CMakeFiles/dlt_lattice.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
