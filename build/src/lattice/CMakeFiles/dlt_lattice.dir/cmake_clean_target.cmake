file(REMOVE_RECURSE
  "libdlt_lattice.a"
)
