# Empty dependencies file for dlt_lattice.
# This may be replaced when dependencies are built.
