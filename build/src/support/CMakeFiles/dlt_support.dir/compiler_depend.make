# Empty compiler generated dependencies file for dlt_support.
# This may be replaced when dependencies are built.
