file(REMOVE_RECURSE
  "CMakeFiles/dlt_support.dir/hex.cpp.o"
  "CMakeFiles/dlt_support.dir/hex.cpp.o.d"
  "CMakeFiles/dlt_support.dir/log.cpp.o"
  "CMakeFiles/dlt_support.dir/log.cpp.o.d"
  "CMakeFiles/dlt_support.dir/rng.cpp.o"
  "CMakeFiles/dlt_support.dir/rng.cpp.o.d"
  "CMakeFiles/dlt_support.dir/serialize.cpp.o"
  "CMakeFiles/dlt_support.dir/serialize.cpp.o.d"
  "CMakeFiles/dlt_support.dir/stats.cpp.o"
  "CMakeFiles/dlt_support.dir/stats.cpp.o.d"
  "libdlt_support.a"
  "libdlt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
