file(REMOVE_RECURSE
  "libdlt_support.a"
)
