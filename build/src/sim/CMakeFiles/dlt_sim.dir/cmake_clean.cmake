file(REMOVE_RECURSE
  "CMakeFiles/dlt_sim.dir/simulation.cpp.o"
  "CMakeFiles/dlt_sim.dir/simulation.cpp.o.d"
  "libdlt_sim.a"
  "libdlt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
