# Empty compiler generated dependencies file for dlt_sim.
# This may be replaced when dependencies are built.
