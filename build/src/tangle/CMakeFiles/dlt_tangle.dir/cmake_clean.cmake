file(REMOVE_RECURSE
  "CMakeFiles/dlt_tangle.dir/tangle.cpp.o"
  "CMakeFiles/dlt_tangle.dir/tangle.cpp.o.d"
  "libdlt_tangle.a"
  "libdlt_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
