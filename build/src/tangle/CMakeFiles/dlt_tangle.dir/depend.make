# Empty dependencies file for dlt_tangle.
# This may be replaced when dependencies are built.
