file(REMOVE_RECURSE
  "libdlt_tangle.a"
)
