
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tangle/tangle.cpp" "src/tangle/CMakeFiles/dlt_tangle.dir/tangle.cpp.o" "gcc" "src/tangle/CMakeFiles/dlt_tangle.dir/tangle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
