file(REMOVE_RECURSE
  "CMakeFiles/dlt_crypto.dir/hash.cpp.o"
  "CMakeFiles/dlt_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/hashcash.cpp.o"
  "CMakeFiles/dlt_crypto.dir/hashcash.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/keys.cpp.o"
  "CMakeFiles/dlt_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/merkle.cpp.o"
  "CMakeFiles/dlt_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dlt_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/dlt_crypto.dir/trie.cpp.o"
  "CMakeFiles/dlt_crypto.dir/trie.cpp.o.d"
  "libdlt_crypto.a"
  "libdlt_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
