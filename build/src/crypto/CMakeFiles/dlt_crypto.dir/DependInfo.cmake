
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hash.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/hash.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/hash.cpp.o.d"
  "/root/repo/src/crypto/hashcash.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/hashcash.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/hashcash.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/keys.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/trie.cpp" "src/crypto/CMakeFiles/dlt_crypto.dir/trie.cpp.o" "gcc" "src/crypto/CMakeFiles/dlt_crypto.dir/trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
