# Empty dependencies file for dlt_crypto.
# This may be replaced when dependencies are built.
