
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/account_tx.cpp" "src/chain/CMakeFiles/dlt_chain.dir/account_tx.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/account_tx.cpp.o.d"
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/dlt_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/dlt_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/difficulty.cpp" "src/chain/CMakeFiles/dlt_chain.dir/difficulty.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/difficulty.cpp.o.d"
  "/root/repo/src/chain/fast_sync.cpp" "src/chain/CMakeFiles/dlt_chain.dir/fast_sync.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/fast_sync.cpp.o.d"
  "/root/repo/src/chain/light_client.cpp" "src/chain/CMakeFiles/dlt_chain.dir/light_client.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/light_client.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/dlt_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/node.cpp" "src/chain/CMakeFiles/dlt_chain.dir/node.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/node.cpp.o.d"
  "/root/repo/src/chain/params.cpp" "src/chain/CMakeFiles/dlt_chain.dir/params.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/params.cpp.o.d"
  "/root/repo/src/chain/pos.cpp" "src/chain/CMakeFiles/dlt_chain.dir/pos.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/pos.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/dlt_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/state.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/dlt_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/utxo.cpp" "src/chain/CMakeFiles/dlt_chain.dir/utxo.cpp.o" "gcc" "src/chain/CMakeFiles/dlt_chain.dir/utxo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
