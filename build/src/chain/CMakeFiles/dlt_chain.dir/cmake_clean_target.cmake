file(REMOVE_RECURSE
  "libdlt_chain.a"
)
