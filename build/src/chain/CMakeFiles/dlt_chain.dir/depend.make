# Empty dependencies file for dlt_chain.
# This may be replaced when dependencies are built.
