file(REMOVE_RECURSE
  "CMakeFiles/dlt_chain.dir/account_tx.cpp.o"
  "CMakeFiles/dlt_chain.dir/account_tx.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/block.cpp.o"
  "CMakeFiles/dlt_chain.dir/block.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/blockchain.cpp.o"
  "CMakeFiles/dlt_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/difficulty.cpp.o"
  "CMakeFiles/dlt_chain.dir/difficulty.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/fast_sync.cpp.o"
  "CMakeFiles/dlt_chain.dir/fast_sync.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/light_client.cpp.o"
  "CMakeFiles/dlt_chain.dir/light_client.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/mempool.cpp.o"
  "CMakeFiles/dlt_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/node.cpp.o"
  "CMakeFiles/dlt_chain.dir/node.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/params.cpp.o"
  "CMakeFiles/dlt_chain.dir/params.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/pos.cpp.o"
  "CMakeFiles/dlt_chain.dir/pos.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/state.cpp.o"
  "CMakeFiles/dlt_chain.dir/state.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/transaction.cpp.o"
  "CMakeFiles/dlt_chain.dir/transaction.cpp.o.d"
  "CMakeFiles/dlt_chain.dir/utxo.cpp.o"
  "CMakeFiles/dlt_chain.dir/utxo.cpp.o.d"
  "libdlt_chain.a"
  "libdlt_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
