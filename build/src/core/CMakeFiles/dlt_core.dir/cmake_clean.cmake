file(REMOVE_RECURSE
  "CMakeFiles/dlt_core.dir/chain_cluster.cpp.o"
  "CMakeFiles/dlt_core.dir/chain_cluster.cpp.o.d"
  "CMakeFiles/dlt_core.dir/confidence.cpp.o"
  "CMakeFiles/dlt_core.dir/confidence.cpp.o.d"
  "CMakeFiles/dlt_core.dir/lattice_cluster.cpp.o"
  "CMakeFiles/dlt_core.dir/lattice_cluster.cpp.o.d"
  "CMakeFiles/dlt_core.dir/workload.cpp.o"
  "CMakeFiles/dlt_core.dir/workload.cpp.o.d"
  "libdlt_core.a"
  "libdlt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
