# Empty compiler generated dependencies file for bench_plasma.
# This may be replaced when dependencies are built.
