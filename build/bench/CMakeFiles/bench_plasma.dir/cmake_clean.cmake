file(REMOVE_RECURSE
  "CMakeFiles/bench_plasma.dir/bench_plasma.cpp.o"
  "CMakeFiles/bench_plasma.dir/bench_plasma.cpp.o.d"
  "bench_plasma"
  "bench_plasma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plasma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
