file(REMOVE_RECURSE
  "CMakeFiles/bench_confirmation_confidence.dir/bench_confirmation_confidence.cpp.o"
  "CMakeFiles/bench_confirmation_confidence.dir/bench_confirmation_confidence.cpp.o.d"
  "bench_confirmation_confidence"
  "bench_confirmation_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confirmation_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
