# Empty dependencies file for bench_confirmation_confidence.
# This may be replaced when dependencies are built.
