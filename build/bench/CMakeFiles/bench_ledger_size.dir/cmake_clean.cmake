file(REMOVE_RECURSE
  "CMakeFiles/bench_ledger_size.dir/bench_ledger_size.cpp.o"
  "CMakeFiles/bench_ledger_size.dir/bench_ledger_size.cpp.o.d"
  "bench_ledger_size"
  "bench_ledger_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ledger_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
