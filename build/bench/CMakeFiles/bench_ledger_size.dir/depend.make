# Empty dependencies file for bench_ledger_size.
# This may be replaced when dependencies are built.
