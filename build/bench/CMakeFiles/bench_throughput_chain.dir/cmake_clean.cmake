file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_chain.dir/bench_throughput_chain.cpp.o"
  "CMakeFiles/bench_throughput_chain.dir/bench_throughput_chain.cpp.o.d"
  "bench_throughput_chain"
  "bench_throughput_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
