# Empty dependencies file for bench_throughput_chain.
# This may be replaced when dependencies are built.
