# Empty compiler generated dependencies file for bench_fig2_block_lattice.
# This may be replaced when dependencies are built.
