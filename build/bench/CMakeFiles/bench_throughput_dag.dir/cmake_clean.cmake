file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_dag.dir/bench_throughput_dag.cpp.o"
  "CMakeFiles/bench_throughput_dag.dir/bench_throughput_dag.cpp.o.d"
  "bench_throughput_dag"
  "bench_throughput_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
