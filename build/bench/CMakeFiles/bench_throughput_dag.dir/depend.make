# Empty dependencies file for bench_throughput_dag.
# This may be replaced when dependencies are built.
