file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_forks.dir/bench_fig4_forks.cpp.o"
  "CMakeFiles/bench_fig4_forks.dir/bench_fig4_forks.cpp.o.d"
  "bench_fig4_forks"
  "bench_fig4_forks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_forks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
