# Empty dependencies file for bench_fig4_forks.
# This may be replaced when dependencies are built.
