file(REMOVE_RECURSE
  "CMakeFiles/bench_vote_confirmation.dir/bench_vote_confirmation.cpp.o"
  "CMakeFiles/bench_vote_confirmation.dir/bench_vote_confirmation.cpp.o.d"
  "bench_vote_confirmation"
  "bench_vote_confirmation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vote_confirmation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
