# Empty dependencies file for bench_vote_confirmation.
# This may be replaced when dependencies are built.
