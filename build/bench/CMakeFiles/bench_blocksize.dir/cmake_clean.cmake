file(REMOVE_RECURSE
  "CMakeFiles/bench_blocksize.dir/bench_blocksize.cpp.o"
  "CMakeFiles/bench_blocksize.dir/bench_blocksize.cpp.o.d"
  "bench_blocksize"
  "bench_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
