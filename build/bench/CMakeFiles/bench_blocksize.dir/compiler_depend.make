# Empty compiler generated dependencies file for bench_blocksize.
# This may be replaced when dependencies are built.
