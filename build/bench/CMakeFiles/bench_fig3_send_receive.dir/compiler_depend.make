# Empty compiler generated dependencies file for bench_fig3_send_receive.
# This may be replaced when dependencies are built.
