file(REMOVE_RECURSE
  "CMakeFiles/bench_channels.dir/bench_channels.cpp.o"
  "CMakeFiles/bench_channels.dir/bench_channels.cpp.o.d"
  "bench_channels"
  "bench_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
