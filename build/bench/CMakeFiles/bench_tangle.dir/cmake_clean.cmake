file(REMOVE_RECURSE
  "CMakeFiles/bench_tangle.dir/bench_tangle.cpp.o"
  "CMakeFiles/bench_tangle.dir/bench_tangle.cpp.o.d"
  "bench_tangle"
  "bench_tangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
