
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tangle.cpp" "bench/CMakeFiles/bench_tangle.dir/bench_tangle.cpp.o" "gcc" "bench/CMakeFiles/bench_tangle.dir/bench_tangle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scaling/CMakeFiles/dlt_scaling.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/dlt_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/dlt_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/tangle/CMakeFiles/dlt_tangle.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dlt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
