# Empty dependencies file for bench_tangle.
# This may be replaced when dependencies are built.
