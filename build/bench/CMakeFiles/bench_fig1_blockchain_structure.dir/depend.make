# Empty dependencies file for bench_fig1_blockchain_structure.
# This may be replaced when dependencies are built.
