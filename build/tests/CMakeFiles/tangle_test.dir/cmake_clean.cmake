file(REMOVE_RECURSE
  "CMakeFiles/tangle_test.dir/tangle_test.cpp.o"
  "CMakeFiles/tangle_test.dir/tangle_test.cpp.o.d"
  "tangle_test"
  "tangle_test.pdb"
  "tangle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
