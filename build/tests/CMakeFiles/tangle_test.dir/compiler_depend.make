# Empty compiler generated dependencies file for tangle_test.
# This may be replaced when dependencies are built.
