# Empty compiler generated dependencies file for crypto_keys_test.
# This may be replaced when dependencies are built.
