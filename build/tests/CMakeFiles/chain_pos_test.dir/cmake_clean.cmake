file(REMOVE_RECURSE
  "CMakeFiles/chain_pos_test.dir/chain_pos_test.cpp.o"
  "CMakeFiles/chain_pos_test.dir/chain_pos_test.cpp.o.d"
  "chain_pos_test"
  "chain_pos_test.pdb"
  "chain_pos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_pos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
