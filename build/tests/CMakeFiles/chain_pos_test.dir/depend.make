# Empty dependencies file for chain_pos_test.
# This may be replaced when dependencies are built.
