file(REMOVE_RECURSE
  "CMakeFiles/lattice_voting_test.dir/lattice_voting_test.cpp.o"
  "CMakeFiles/lattice_voting_test.dir/lattice_voting_test.cpp.o.d"
  "lattice_voting_test"
  "lattice_voting_test.pdb"
  "lattice_voting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_voting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
