file(REMOVE_RECURSE
  "CMakeFiles/chain_mempool_test.dir/chain_mempool_test.cpp.o"
  "CMakeFiles/chain_mempool_test.dir/chain_mempool_test.cpp.o.d"
  "chain_mempool_test"
  "chain_mempool_test.pdb"
  "chain_mempool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_mempool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
