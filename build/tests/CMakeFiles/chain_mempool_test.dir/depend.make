# Empty dependencies file for chain_mempool_test.
# This may be replaced when dependencies are built.
