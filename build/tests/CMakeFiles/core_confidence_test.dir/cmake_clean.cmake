file(REMOVE_RECURSE
  "CMakeFiles/core_confidence_test.dir/core_confidence_test.cpp.o"
  "CMakeFiles/core_confidence_test.dir/core_confidence_test.cpp.o.d"
  "core_confidence_test"
  "core_confidence_test.pdb"
  "core_confidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
