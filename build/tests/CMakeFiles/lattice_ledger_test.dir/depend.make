# Empty dependencies file for lattice_ledger_test.
# This may be replaced when dependencies are built.
