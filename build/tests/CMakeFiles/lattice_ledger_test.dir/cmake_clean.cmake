file(REMOVE_RECURSE
  "CMakeFiles/lattice_ledger_test.dir/lattice_ledger_test.cpp.o"
  "CMakeFiles/lattice_ledger_test.dir/lattice_ledger_test.cpp.o.d"
  "lattice_ledger_test"
  "lattice_ledger_test.pdb"
  "lattice_ledger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
