# Empty dependencies file for chain_state_test.
# This may be replaced when dependencies are built.
