file(REMOVE_RECURSE
  "CMakeFiles/chain_state_test.dir/chain_state_test.cpp.o"
  "CMakeFiles/chain_state_test.dir/chain_state_test.cpp.o.d"
  "chain_state_test"
  "chain_state_test.pdb"
  "chain_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
