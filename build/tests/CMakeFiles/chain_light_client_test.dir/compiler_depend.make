# Empty compiler generated dependencies file for chain_light_client_test.
# This may be replaced when dependencies are built.
