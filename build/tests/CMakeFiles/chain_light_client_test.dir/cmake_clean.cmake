file(REMOVE_RECURSE
  "CMakeFiles/chain_light_client_test.dir/chain_light_client_test.cpp.o"
  "CMakeFiles/chain_light_client_test.dir/chain_light_client_test.cpp.o.d"
  "chain_light_client_test"
  "chain_light_client_test.pdb"
  "chain_light_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_light_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
