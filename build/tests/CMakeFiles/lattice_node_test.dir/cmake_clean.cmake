file(REMOVE_RECURSE
  "CMakeFiles/lattice_node_test.dir/lattice_node_test.cpp.o"
  "CMakeFiles/lattice_node_test.dir/lattice_node_test.cpp.o.d"
  "lattice_node_test"
  "lattice_node_test.pdb"
  "lattice_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
