file(REMOVE_RECURSE
  "CMakeFiles/chain_pruning_sync_test.dir/chain_pruning_sync_test.cpp.o"
  "CMakeFiles/chain_pruning_sync_test.dir/chain_pruning_sync_test.cpp.o.d"
  "chain_pruning_sync_test"
  "chain_pruning_sync_test.pdb"
  "chain_pruning_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_pruning_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
