# Empty compiler generated dependencies file for chain_pruning_sync_test.
# This may be replaced when dependencies are built.
