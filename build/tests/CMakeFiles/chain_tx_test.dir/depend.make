# Empty dependencies file for chain_tx_test.
# This may be replaced when dependencies are built.
