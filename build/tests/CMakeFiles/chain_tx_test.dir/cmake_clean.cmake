file(REMOVE_RECURSE
  "CMakeFiles/chain_tx_test.dir/chain_tx_test.cpp.o"
  "CMakeFiles/chain_tx_test.dir/chain_tx_test.cpp.o.d"
  "chain_tx_test"
  "chain_tx_test.pdb"
  "chain_tx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_tx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
