file(REMOVE_RECURSE
  "CMakeFiles/lattice_block_test.dir/lattice_block_test.cpp.o"
  "CMakeFiles/lattice_block_test.dir/lattice_block_test.cpp.o.d"
  "lattice_block_test"
  "lattice_block_test.pdb"
  "lattice_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
