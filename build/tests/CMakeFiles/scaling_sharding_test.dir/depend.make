# Empty dependencies file for scaling_sharding_test.
# This may be replaced when dependencies are built.
