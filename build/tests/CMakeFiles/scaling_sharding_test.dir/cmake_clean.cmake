file(REMOVE_RECURSE
  "CMakeFiles/scaling_sharding_test.dir/scaling_sharding_test.cpp.o"
  "CMakeFiles/scaling_sharding_test.dir/scaling_sharding_test.cpp.o.d"
  "scaling_sharding_test"
  "scaling_sharding_test.pdb"
  "scaling_sharding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
