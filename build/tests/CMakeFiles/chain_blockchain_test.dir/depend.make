# Empty dependencies file for chain_blockchain_test.
# This may be replaced when dependencies are built.
