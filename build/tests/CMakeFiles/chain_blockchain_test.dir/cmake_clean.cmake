file(REMOVE_RECURSE
  "CMakeFiles/chain_blockchain_test.dir/chain_blockchain_test.cpp.o"
  "CMakeFiles/chain_blockchain_test.dir/chain_blockchain_test.cpp.o.d"
  "chain_blockchain_test"
  "chain_blockchain_test.pdb"
  "chain_blockchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_blockchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
