file(REMOVE_RECURSE
  "CMakeFiles/scaling_plasma_test.dir/scaling_plasma_test.cpp.o"
  "CMakeFiles/scaling_plasma_test.dir/scaling_plasma_test.cpp.o.d"
  "scaling_plasma_test"
  "scaling_plasma_test.pdb"
  "scaling_plasma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_plasma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
