# Empty compiler generated dependencies file for scaling_plasma_test.
# This may be replaced when dependencies are built.
