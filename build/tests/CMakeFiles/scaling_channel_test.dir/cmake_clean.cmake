file(REMOVE_RECURSE
  "CMakeFiles/scaling_channel_test.dir/scaling_channel_test.cpp.o"
  "CMakeFiles/scaling_channel_test.dir/scaling_channel_test.cpp.o.d"
  "scaling_channel_test"
  "scaling_channel_test.pdb"
  "scaling_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
