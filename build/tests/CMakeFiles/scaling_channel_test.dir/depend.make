# Empty dependencies file for scaling_channel_test.
# This may be replaced when dependencies are built.
