file(REMOVE_RECURSE
  "CMakeFiles/crypto_trie_test.dir/crypto_trie_test.cpp.o"
  "CMakeFiles/crypto_trie_test.dir/crypto_trie_test.cpp.o.d"
  "crypto_trie_test"
  "crypto_trie_test.pdb"
  "crypto_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
