# Empty dependencies file for crypto_trie_test.
# This may be replaced when dependencies are built.
