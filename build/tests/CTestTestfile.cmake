# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_sha256_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_merkle_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_trie_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_keys_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/chain_tx_test[1]_include.cmake")
include("/root/repo/build/tests/chain_blockchain_test[1]_include.cmake")
include("/root/repo/build/tests/chain_state_test[1]_include.cmake")
include("/root/repo/build/tests/chain_mempool_test[1]_include.cmake")
include("/root/repo/build/tests/chain_pos_test[1]_include.cmake")
include("/root/repo/build/tests/chain_pruning_sync_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_block_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_ledger_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_voting_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_node_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_channel_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_plasma_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_sharding_test[1]_include.cmake")
include("/root/repo/build/tests/core_confidence_test[1]_include.cmake")
include("/root/repo/build/tests/core_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/chain_light_client_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/tangle_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
