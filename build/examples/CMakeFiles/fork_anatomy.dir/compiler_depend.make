# Empty compiler generated dependencies file for fork_anatomy.
# This may be replaced when dependencies are built.
