file(REMOVE_RECURSE
  "CMakeFiles/fork_anatomy.dir/fork_anatomy.cpp.o"
  "CMakeFiles/fork_anatomy.dir/fork_anatomy.cpp.o.d"
  "fork_anatomy"
  "fork_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
