file(REMOVE_RECURSE
  "CMakeFiles/channel_payments.dir/channel_payments.cpp.o"
  "CMakeFiles/channel_payments.dir/channel_payments.cpp.o.d"
  "channel_payments"
  "channel_payments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_payments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
