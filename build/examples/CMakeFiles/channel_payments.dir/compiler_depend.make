# Empty compiler generated dependencies file for channel_payments.
# This may be replaced when dependencies are built.
