file(REMOVE_RECURSE
  "CMakeFiles/payment_network.dir/payment_network.cpp.o"
  "CMakeFiles/payment_network.dir/payment_network.cpp.o.d"
  "payment_network"
  "payment_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payment_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
