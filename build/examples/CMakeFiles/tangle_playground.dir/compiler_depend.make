# Empty compiler generated dependencies file for tangle_playground.
# This may be replaced when dependencies are built.
