file(REMOVE_RECURSE
  "CMakeFiles/tangle_playground.dir/tangle_playground.cpp.o"
  "CMakeFiles/tangle_playground.dir/tangle_playground.cpp.o.d"
  "tangle_playground"
  "tangle_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tangle_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
