file(REMOVE_RECURSE
  "CMakeFiles/dag_conflict_resolution.dir/dag_conflict_resolution.cpp.o"
  "CMakeFiles/dag_conflict_resolution.dir/dag_conflict_resolution.cpp.o.d"
  "dag_conflict_resolution"
  "dag_conflict_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_conflict_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
