# Empty dependencies file for dag_conflict_resolution.
# This may be replaced when dependencies are built.
