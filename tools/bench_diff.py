#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and flag regressions.

Flattens both reports to dotted paths (systems.bitcoin_like.tps_included,
metrics.counters.chain.blocks_mined, ...), prints per-metric deltas, and
exits non-zero when any metric regressed by more than the threshold.

Direction matters: most metrics are "bigger is better" (tps, confirmed,
speedup), but latency/backlog/fork metrics are "smaller is better"; the
classifier below keys off the metric name. Wall-clock noise is excluded by
default: keys under a `profile.` histogram prefix and `wall_seconds`
entries vary run-to-run on a busy machine and are reported informationally
unless --include-profile is given. The deterministic sections (counters,
gauges, trace_summary) must match exactly across identical-seed runs --
use --exact for that stronger check in CI.

Usage:
  tools/bench_diff.py old/BENCH_throughput_chain.json new/BENCH_throughput_chain.json
  tools/bench_diff.py --threshold 10 old.json new.json
  tools/bench_diff.py --exact a/BENCH_x.json b/BENCH_x.json   # byte-level determinism
  tools/bench_diff.py --exact --ignore cluster.parallel.validate.workers a.json b.json
"""

import argparse
import json
import math
import sys

# Substrings marking metrics where an increase is a regression. Safety
# metrics read the same way: a higher attack flip probability or a more
# concentrated inclusion Gini is worse. (honest_tip_share stays under the
# larger-is-better default.)
SMALLER_IS_BETTER = (
    "flip_probability",
    "inclusion_gini",
    "latency",
    "median",
    "p95",
    "p99",
    "pending",
    "unsettled",
    "orphan",
    "reorg",
    "rollback",
    "dropped",
    "rejected",
    "evicted",
    "backpressured",
    "bytes",
    "wall_seconds",
    "_ns",
    "_us",
    "_ms",
    "rounds_to_drain",
)

# Full-path exceptions to the "bytes" rule above: the storage layer's
# pruned_bytes gauge counts bytes *reclaimed* by pruning, so growth there
# is the pruning discipline working harder, not the ledger bloating.
# (storage.log_bytes / storage.state_bytes stay smaller-is-better: a
# larger log or arena is a real on-disk regression.) "admitted" is the
# admission-control success bucket: at fixed offered load, admitting more
# is strictly better, while its evicted/rejected/backpressured siblings
# above read the other way. latency.class.* paths need no entry — they
# contain "latency" and inherit its smaller-is-better direction.
LARGER_IS_BETTER = ("storage.pruned_bytes", "admitted")

# Wall-clock metrics: noisy, excluded from the regression gate by default.
PROFILE_MARKERS = ("profile.", "wall_seconds", "events_per_sec", "_ns", "_us")


def flatten(node, prefix=""):
    """Yield (dotted_path, number) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}{i}.")
    elif isinstance(node, bool):
        yield prefix.rstrip("."), 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), float(node)


def is_profile(path):
    return any(marker in path for marker in PROFILE_MARKERS)


def smaller_is_better(path):
    leaf = path.rsplit(".", 1)[-1]
    # A "count" leaf is an observation count, not a latency: fewer
    # confirmed transactions inside latency.submit_to_confirm.count is a
    # regression even though the enclosing path says "latency".
    if leaf == "count":
        return False
    if any(marker in path for marker in LARGER_IS_BETTER):
        return False
    return any(marker in leaf or marker in path for marker in SMALLER_IS_BETTER)


def classify(path, old, new, threshold_pct):
    """Returns (delta_pct, verdict) with verdict in ok/regressed/improved."""
    if old == new:
        return 0.0, "ok"
    if old == 0.0:
        delta = math.inf if new > 0 else -math.inf
    else:
        delta = (new - old) / abs(old) * 100.0
    worse = delta < 0 if not smaller_is_better(path) else delta > 0
    if abs(delta) <= threshold_pct:
        return delta, "ok"
    return delta, "regressed" if worse else "improved"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="regression tolerance in percent (default 5)",
    )
    parser.add_argument(
        "--include-profile",
        action="store_true",
        help="gate on wall-clock profile.* metrics too (noisy)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="require every metric identical (determinism check); any "
        "movement, addition, or removal fails",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PREFIX",
        help="skip metrics whose dotted path starts with PREFIX "
        "(repeatable; e.g. deliberately run-dependent gauges)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print regressions"
    )
    args = parser.parse_args()

    with open(args.old) as f:
        old_report = json.load(f)
    with open(args.new) as f:
        new_report = json.load(f)

    old_metrics = dict(flatten(old_report))
    new_metrics = dict(flatten(new_report))

    regressions = []
    rows = []
    for path in sorted(set(old_metrics) | set(new_metrics)):
        if any(path.startswith(prefix) for prefix in args.ignore):
            rows.append((path, old_metrics.get(path), new_metrics.get(path),
                         None, "ignored"))
            continue
        if path not in old_metrics:
            rows.append((path, None, new_metrics[path], None, "added"))
            if args.exact:
                regressions.append(path)
            continue
        if path not in new_metrics:
            rows.append((path, old_metrics[path], None, None, "removed"))
            if args.exact:
                regressions.append(path)
            continue
        old, new = old_metrics[path], new_metrics[path]
        threshold = 0.0 if args.exact else args.threshold
        delta, verdict = classify(path, old, new, threshold)
        profile = is_profile(path)
        if profile and not args.include_profile:
            if verdict in ("regressed", "improved"):
                verdict = "profile-noise"
        elif verdict == "regressed" or (args.exact and verdict == "improved"):
            regressions.append(path)
        rows.append((path, old, new, delta, verdict))

    def fmt(v):
        if v is None:
            return "-"
        return f"{v:.6g}"

    shown = 0
    for path, old, new, delta, verdict in rows:
        if args.quiet and verdict in ("ok", "profile-noise", "ignored"):
            continue
        if verdict == "ok" and delta == 0.0 and not args.exact:
            continue  # unchanged: keep output focused on movement
        delta_s = "-" if delta is None else f"{delta:+.2f}%"
        print(f"{verdict:>13}  {path}: {fmt(old)} -> {fmt(new)} ({delta_s})")
        shown += 1
    if shown == 0:
        print("no metric movement")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
            f"{0.0 if args.exact else args.threshold}%:",
            file=sys.stderr,
        )
        for path in regressions:
            print(f"  {path}", file=sys.stderr)
        return 1
    print("\nOK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
