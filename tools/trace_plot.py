#!/usr/bin/env python3
"""Render transaction-lifecycle plots from a DLT trace (TRACE_*.jsonl).

Consumes the typed lifecycle events the obs::LatencyTracker emits
(tx_submitted / tx_admitted / tx_included / tx_confirmed, all keyed by
the same trace id) and produces:

  <out>_timeline.svg  per-node Gantt: one lane per submitting node, one
                      bar per confirmed transaction spanning submit ->
                      confirm, with include stamps marked
  <out>_cdf.svg       latency CDFs for each lifecycle stage delta
  <out>_cdf.txt       the same CDFs as a text table (stage percentiles
                      plus cumulative-fraction rows), also echoed to
                      stdout

Stdlib-only by design: the determinism gate and check.sh --latency run
this on bare CI images. Traces are deterministic for a given seed, so
the SVG/text bytes are too.

Usage:
  tools/trace_plot.py TRACE_throughput_tangle.jsonl [--out PREFIX]
                      [--max-bars N]
  tools/trace_plot.py --selftest
"""

import argparse
import json
import math
import sys

LIFECYCLE = ("tx_submitted", "tx_admitted", "tx_included", "tx_confirmed")

# Stage deltas plotted/tabulated, in lifecycle order.
STAGES = (
    ("submit_to_admit", "tx_submitted", "tx_admitted"),
    ("admit_to_include", "tx_admitted", "tx_included"),
    ("include_to_confirm", "tx_included", "tx_confirmed"),
    ("submit_to_confirm", "tx_submitted", "tx_confirmed"),
)

STAGE_COLORS = {
    "submit_to_admit": "#4c72b0",
    "admit_to_include": "#dd8452",
    "include_to_confirm": "#55a868",
    "submit_to_confirm": "#c44e52",
}


def parse_trace(lines):
    """Returns ({id: {event: (time, node)}}, skipped_line_count).

    First stamp per (id, event) wins, matching LatencyTracker semantics
    (re-gossiped duplicates and reorg restamps do not move the clock
    backwards in the exported trace).
    """
    txs = {}
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        kind = ev.get("ev")
        if kind not in LIFECYCLE or "id" not in ev:
            continue
        stamps = txs.setdefault(ev["id"], {})
        if kind not in stamps:
            stamps[kind] = (float(ev["t"]), int(ev.get("node", 0)))
    return txs, skipped


def stage_samples(txs):
    """{stage_name: sorted [delta_seconds]} for txs with both stamps."""
    out = {name: [] for name, _, _ in STAGES}
    for stamps in txs.values():
        for name, begin, end in STAGES:
            if begin in stamps and end in stamps:
                out[name].append(stamps[end][0] - stamps[begin][0])
    for name in out:
        out[name].sort()
    return out


def quantile(sorted_xs, q):
    """Linear-interpolation quantile of a sorted list (matches
    support::Percentiles::quantile)."""
    if not sorted_xs:
        return 0.0
    pos = q * (len(sorted_xs) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_xs) - 1)
    frac = pos - lo
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac


def fmt(x):
    return f"{x:.6f}"


# ---------------------------------------------------------------------------
# SVG primitives (hand-rolled; no dependencies)
# ---------------------------------------------------------------------------


def svg_header(width, height, title):
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="11">',
        f'<title>{title}</title>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def svg_text(x, y, s, anchor="start", color="#222"):
    return (
        f'<text x="{fmt(x)}" y="{fmt(y)}" text-anchor="{anchor}" '
        f'fill="{color}">{s}</text>'
    )


def svg_line(x1, y1, x2, y2, color="#999", width=1.0):
    return (
        f'<line x1="{fmt(x1)}" y1="{fmt(y1)}" x2="{fmt(x2)}" '
        f'y2="{fmt(y2)}" stroke="{color}" stroke-width="{width}"/>'
    )


def svg_rect(x, y, w, h, color, opacity=1.0):
    return (
        f'<rect x="{fmt(x)}" y="{fmt(y)}" width="{fmt(max(w, 0.5))}" '
        f'height="{fmt(h)}" fill="{color}" fill-opacity="{opacity}"/>'
    )


def svg_polyline(points, color, width=1.5):
    pts = " ".join(f"{fmt(x)},{fmt(y)}" for x, y in points)
    return (
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="{width}"/>'
    )


# ---------------------------------------------------------------------------
# Gantt / timeline
# ---------------------------------------------------------------------------


def render_timeline(txs, max_bars):
    """Per-node Gantt of confirmed transactions (submit -> confirm)."""
    confirmed = [
        (tid, stamps)
        for tid, stamps in txs.items()
        if "tx_submitted" in stamps and "tx_confirmed" in stamps
    ]
    # Deterministic order: by submit time, then id.
    confirmed.sort(key=lambda kv: (kv[1]["tx_submitted"][0], kv[0]))
    dropped = max(0, len(confirmed) - max_bars)
    confirmed = confirmed[:max_bars]

    nodes = sorted({stamps["tx_submitted"][1] for _, stamps in confirmed})
    if not confirmed:
        parts = svg_header(640, 80, "lifecycle timeline (empty)")
        parts.append(svg_text(20, 40, "no confirmed transactions in trace"))
        parts.append("</svg>")
        return "\n".join(parts), 0, dropped

    t0 = min(stamps["tx_submitted"][0] for _, stamps in confirmed)
    t1 = max(stamps["tx_confirmed"][0] for _, stamps in confirmed)
    span = max(t1 - t0, 1e-9)

    left, right, top, lane_h = 80, 30, 40, 0
    width = 960
    plot_w = width - left - right
    # Bars stack within their submit node's lane.
    by_node = {n: [] for n in nodes}
    for tid, stamps in confirmed:
        by_node[stamps["tx_submitted"][1]].append((tid, stamps))
    bar_h, bar_gap = 3, 1
    lane_pad = 8
    lane_heights = {
        n: len(by_node[n]) * (bar_h + bar_gap) + lane_pad for n in nodes
    }
    height = top + sum(lane_heights.values()) + 40

    parts = svg_header(width, height, "transaction lifecycle timeline")
    parts.append(
        svg_text(left, 20, f"lifecycle timeline: {len(confirmed)} confirmed "
                           f"txs, t=[{t0:.3f}s, {t1:.3f}s]")
    )
    # Time axis.
    axis_y = height - 18
    parts.append(svg_line(left, axis_y, width - right, axis_y, "#222"))
    for i in range(6):
        tx_ = t0 + span * i / 5.0
        x = left + plot_w * i / 5.0
        parts.append(svg_line(x, axis_y - 3, x, axis_y + 3, "#222"))
        parts.append(svg_text(x, axis_y + 14, f"{tx_:.1f}s", anchor="middle"))

    y = top
    for n in nodes:
        lane_top = y
        parts.append(svg_text(8, y + 12, f"node {n}"))
        for tid, stamps in by_node[n]:
            sub = stamps["tx_submitted"][0]
            conf = stamps["tx_confirmed"][0]
            x_sub = left + plot_w * (sub - t0) / span
            x_conf = left + plot_w * (conf - t0) / span
            if "tx_included" in stamps:
                inc = stamps["tx_included"][0]
                x_inc = left + plot_w * (inc - t0) / span
                parts.append(
                    svg_rect(x_sub, y, x_inc - x_sub, bar_h,
                             STAGE_COLORS["admit_to_include"], 0.9))
                parts.append(
                    svg_rect(x_inc, y, x_conf - x_inc, bar_h,
                             STAGE_COLORS["include_to_confirm"], 0.9))
            else:
                parts.append(
                    svg_rect(x_sub, y, x_conf - x_sub, bar_h,
                             STAGE_COLORS["submit_to_confirm"], 0.9))
            y += bar_h + bar_gap
        y = lane_top + lane_heights[n]
        parts.append(svg_line(left, y - lane_pad / 2, width - right,
                              y - lane_pad / 2, "#eee"))
    # Legend.
    parts.append(svg_rect(left, height - 34, 10, 8,
                          STAGE_COLORS["admit_to_include"]))
    parts.append(svg_text(left + 14, height - 26, "submit->include"))
    parts.append(svg_rect(left + 140, height - 34, 10, 8,
                          STAGE_COLORS["include_to_confirm"]))
    parts.append(svg_text(left + 154, height - 26, "include->confirm"))
    parts.append("</svg>")
    return "\n".join(parts), len(confirmed), dropped


# ---------------------------------------------------------------------------
# Latency CDF
# ---------------------------------------------------------------------------


def render_cdf_svg(samples):
    width, height = 640, 400
    left, right, top, bottom = 60, 20, 30, 50
    plot_w, plot_h = width - left - right, height - top - bottom

    xmax = max((xs[-1] for xs in samples.values() if xs), default=1.0)
    xmax = max(xmax, 1e-9)

    parts = svg_header(width, height, "lifecycle latency CDF")
    parts.append(svg_text(left, 18, "lifecycle latency CDF (per stage)"))
    # Axes.
    parts.append(svg_line(left, top, left, top + plot_h, "#222"))
    parts.append(svg_line(left, top + plot_h, left + plot_w, top + plot_h,
                          "#222"))
    for i in range(6):
        frac = i / 5.0
        y = top + plot_h * (1.0 - frac)
        parts.append(svg_line(left - 3, y, left, y, "#222"))
        parts.append(svg_text(left - 6, y + 4, f"{frac:.1f}", anchor="end"))
        x = left + plot_w * frac
        parts.append(svg_line(x, top + plot_h, x, top + plot_h + 3, "#222"))
        parts.append(svg_text(x, top + plot_h + 16, f"{xmax * frac:.3f}s",
                              anchor="middle"))
    legend_y = height - 12
    legend_x = left
    for name, _, _ in STAGES:
        xs = samples[name]
        if not xs:
            continue
        n = len(xs)
        points = [(left, top + plot_h)]
        for i, x in enumerate(xs):
            px = left + plot_w * x / xmax
            py = top + plot_h * (1.0 - (i + 1) / n)
            points.append((px, py))
        points.append((left + plot_w, points[-1][1]))
        parts.append(svg_polyline(points, STAGE_COLORS[name]))
        parts.append(svg_rect(legend_x, legend_y - 8, 10, 8,
                              STAGE_COLORS[name]))
        parts.append(svg_text(legend_x + 14, legend_y, name))
        legend_x += 14 + 8 * len(name) + 24
    parts.append("</svg>")
    return "\n".join(parts)


def render_cdf_text(samples, cdf_points=10):
    lines = ["stage percentiles (seconds):",
             f"{'stage':<20} {'count':>7} {'p50':>12} {'p90':>12} "
             f"{'p99':>12} {'p999':>12} {'max':>12}"]
    for name, _, _ in STAGES:
        xs = samples[name]
        if not xs:
            lines.append(f"{name:<20} {0:>7} {'-':>12} {'-':>12} {'-':>12} "
                         f"{'-':>12} {'-':>12}")
            continue
        lines.append(
            f"{name:<20} {len(xs):>7} {quantile(xs, 0.5):>12.6f} "
            f"{quantile(xs, 0.9):>12.6f} {quantile(xs, 0.99):>12.6f} "
            f"{quantile(xs, 0.999):>12.6f} {xs[-1]:>12.6f}")
    lines.append("")
    lines.append("submit_to_confirm CDF:")
    lines.append(f"{'fraction':>9} {'latency_s':>12}")
    xs = samples["submit_to_confirm"]
    if xs:
        for i in range(1, cdf_points + 1):
            q = i / cdf_points
            lines.append(f"{q:>9.2f} {quantile(xs, q):>12.6f}")
    else:
        lines.append("  (no confirmed transactions)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(trace_lines, out_prefix, max_bars):
    txs, skipped = parse_trace(trace_lines)
    samples = stage_samples(txs)

    timeline_svg, bars, dropped = render_timeline(txs, max_bars)
    cdf_svg = render_cdf_svg(samples)
    cdf_txt = render_cdf_text(samples)

    outputs = {
        f"{out_prefix}_timeline.svg": timeline_svg,
        f"{out_prefix}_cdf.svg": cdf_svg,
        f"{out_prefix}_cdf.txt": cdf_txt,
    }
    for path, content in outputs.items():
        with open(path, "w") as f:
            f.write(content)

    print(f"parsed {len(txs)} lifecycle txs "
          f"({len(samples['submit_to_confirm'])} confirmed"
          f"{f', {skipped} unparsable lines skipped' if skipped else ''})")
    if dropped:
        print(f"timeline capped at {bars} bars ({dropped} more confirmed "
              f"txs not drawn; raise --max-bars to include them)")
    for path in outputs:
        print(f"wrote {path}")
    print()
    print(cdf_txt, end="")
    return 0 if samples["submit_to_confirm"] else 1


def synthetic_trace():
    """A small deterministic trace exercising every code path."""
    lines = []
    for i in range(40):
        tid = 1000 + i
        node = i % 4
        sub = 0.5 * i
        lines.append(json.dumps(
            {"t": sub, "ev": "tx_submitted", "node": node, "id": tid,
             "aux": 0}))
        lines.append(json.dumps(
            {"t": sub, "ev": "tx_admitted", "node": node, "id": tid,
             "aux": 0}))
        if i % 5 != 4:  # some never get included
            lines.append(json.dumps(
                {"t": sub + 0.3 + 0.01 * i, "ev": "tx_included",
                 "node": 0, "id": tid, "height": i}))
        if i % 7 != 6:  # some never confirm
            lines.append(json.dumps(
                {"t": sub + 1.0 + 0.05 * i, "ev": "tx_confirmed",
                 "node": 0, "id": tid, "height": i}))
    lines.append('{"t":0.1,"ev":"message_sent","node":1,"kind":0,"bytes":9}')
    lines.append("not json")  # skipped, counted
    return lines


def selftest(tmp_prefix):
    code = run(synthetic_trace(), tmp_prefix, max_bars=30)
    assert code == 0, "synthetic trace has confirmations"
    for suffix in ("_timeline.svg", "_cdf.svg", "_cdf.txt"):
        with open(tmp_prefix + suffix) as f:
            content = f.read()
        assert content, f"{suffix} is empty"
        if suffix.endswith(".svg"):
            assert content.startswith("<svg"), f"{suffix} is not SVG"
    with open(tmp_prefix + "_cdf.txt") as f:
        assert "submit_to_confirm" in f.read()
    print("selftest ok")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Render lifecycle Gantt + latency CDF from a DLT "
                    "trace JSONL.")
    ap.add_argument("trace", nargs="?", help="TRACE_*.jsonl path")
    ap.add_argument("--out", help="output prefix (default: trace filename "
                                  "without TRACE_/extension)")
    ap.add_argument("--max-bars", type=int, default=400,
                    help="cap on timeline bars (default 400)")
    ap.add_argument("--selftest", action="store_true",
                    help="run on a built-in synthetic trace and exit")
    args = ap.parse_args(argv)

    if args.selftest:
        return selftest(args.out or "trace_plot_selftest")
    if not args.trace:
        ap.error("trace path required (or --selftest)")

    prefix = args.out
    if not prefix:
        name = args.trace.rsplit("/", 1)[-1]
        if name.startswith("TRACE_"):
            name = name[len("TRACE_"):]
        prefix = name.rsplit(".", 1)[0]

    with open(args.trace) as f:
        return run(f, prefix, args.max_bars)


if __name__ == "__main__":
    sys.exit(main())
