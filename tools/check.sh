#!/usr/bin/env bash
# One-shot gate: tier-1 build + tests, then the same suite under
# AddressSanitizer and UndefinedBehaviorSanitizer.
#
#   tools/check.sh                # tier-1 + asan + ubsan
#   tools/check.sh --fast         # tier-1 only
#   tools/check.sh --determinism  # tier-1 + parallel-pipeline gates
#   tools/check.sh --tsan         # tier-1 + ThreadSanitizer pass
#   tools/check.sh --perf         # tier-1 + Release perf gate
#   tools/check.sh --latency      # tier-1 + lifecycle-latency pipeline gate
#   tools/check.sh --attacks      # tier-1 + adversarial-suite safety gate
#   tools/check.sh --storage      # tier-1 + §V on-disk ledger-size gate
#   tools/check.sh --traffic      # tier-1 + E20 open-loop admission gate
#
# Flags combine: `tools/check.sh --determinism --tsan` runs the tier-1
# suite once, then both extra passes in one invocation. Any extra flag
# implies --fast (the asan/ubsan pair stays opt-out via the plain run).
#
# Each pass uses its own build directory so sanitizer flags never leak
# into the primary build/ tree. --determinism replays the same seed at
# two worker counts — for both the stateless validation pipeline and the
# conflict-group state sharding (DLT_PARALLEL_STATE=1) — and requires
# identical metrics + byte-identical traces (tools/determinism_gate.sh).
# --tsan exercises the verify-pool data paths (sharded validation, batch
# verification, sharded state application) under ThreadSanitizer; it is
# split from the default run because TSan is an order of magnitude
# slower than the tier-1 suite.
# --perf builds bench_simcore and bench_hotpath in a Release tree
# (build-perf) and gates on the recorded scheduler speedup: the slab
# engine must hold >= 2x events/sec over the embedded legacy scheduler.
# --latency runs a traced cluster bench end-to-end through the
# observability pipeline: DLT_TRACE trace -> tools/trace_plot.py Gantt +
# CDF outputs (must be non-empty), plus a direction check that
# tools/bench_diff.py treats latency increases AND confirmed-count drops
# as regressions.
# --attacks runs bench_adversarial and gates on the measured safety
# metrics: parasite flip probability monotone nondecreasing and spam
# honest tip share monotone nonincreasing in attacker power, across >= 3
# power levels under >= 2 tip-selection strategies, with the attack.*
# gauges present in the exported metrics section.
# --storage runs bench_ledger_size (E19) in both DLT_STORAGE modes and
# gates on: the bench's own exit status (every §V-A pruning discipline
# shrinks its log, the on-disk bytes match the storage.* gauges, and the
# overbudget ledger outgrows its RAM budget), memory-vs-disk equality of
# the exported report (the storage determinism contract), and the §V
# size ordering on real bytes: UTXO archival > account state-pruned >
# lattice head-only.
# --traffic runs bench_openloop (E20) and re-derives its gates from the
# exported JSON: admission.* reconciles exactly on every sweep row, the
# top point per ledger is past saturation (offered > achieved) with
# admission pressure (evictions or backpressure), and every fee class
# has a non-empty latency histogram there.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
DETERMINISM=0
TSAN=0
PERF=0
LATENCY=0
ATTACKS=0
STORAGE=0
TRAFFIC=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --determinism) FAST=1; DETERMINISM=1 ;;
    --tsan) FAST=1; TSAN=1 ;;
    --perf) FAST=1; PERF=1 ;;
    --latency) FAST=1; LATENCY=1 ;;
    --attacks) FAST=1; ATTACKS=1 ;;
    --storage) FAST=1; STORAGE=1 ;;
    --traffic) FAST=1; TRAFFIC=1 ;;
    *)
      echo "usage: tools/check.sh [--fast] [--determinism] [--tsan] [--perf] [--latency] [--attacks] [--storage] [--traffic]" >&2
      exit 2
      ;;
  esac
done

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== [$label] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$label] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$label] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$label] OK ==="
}

run_pass tier-1 build

if [[ "$DETERMINISM" == "1" ]]; then
  cmake --build build -j "$JOBS" --target bench_throughput_chain \
    bench_throughput_dag bench_throughput_tangle bench_adversarial \
    bench_openloop
  tools/determinism_gate.sh build
fi

if [[ "$ATTACKS" == "1" ]]; then
  echo "=== [attacks] bench_adversarial ==="
  cmake --build build -j "$JOBS" --target bench_adversarial
  attdir="$(mktemp -d)"
  (cd "$attdir" && "$OLDPWD/build/bench/bench_adversarial" > bench_stdout.txt)
  echo "=== [attacks] safety-metric monotonicity + gauge presence ==="
  python3 - "$attdir/BENCH_adversarial.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))

def sweeps(rows, metric):
    by_strategy = {}
    for row in rows:
        by_strategy.setdefault(row["strategy"], []).append(
            (row["power"], row[metric]))
    return {s: sorted(v) for s, v in by_strategy.items()}

def check(name, rows, metric, decreasing):
    swept = sweeps(rows, metric)
    if len(swept) < 2:
        sys.exit(f"FAIL: {name} swept {len(swept)} strategies, need >= 2")
    for strategy, points in swept.items():
        if len(points) < 3:
            sys.exit(f"FAIL: {name}/{strategy} has {len(points)} power "
                     "levels, need >= 3")
        values = [v for _, v in points]
        ordered = all(b <= a if decreasing else b >= a
                      for a, b in zip(values, values[1:]))
        if not ordered:
            sys.exit(f"FAIL: {name}/{strategy} {metric} not monotone: "
                     f"{values}")
        if values[0] == values[-1]:
            sys.exit(f"FAIL: {name}/{strategy} {metric} is flat: {values}")
        print(f"{name}/{strategy}: {metric} {values[0]:.3f} -> "
              f"{values[-1]:.3f} over {len(values)} powers")

check("parasite", report["parasite"], "flip_probability", decreasing=False)
check("spam", report["spam"], "honest_tip_share", decreasing=True)

gauges = report.get("metrics", {}).get("gauges", {})
missing = [g for g in ("attack.parasite.flip_probability",
                       "fairness.inclusion_gini") if g not in gauges]
if missing:
    sys.exit(f"FAIL: attack gauges missing from metrics export: {missing}")
selfish = report["selfish"]
if not any(row["revenue_share"] > 0 for row in selfish):
    sys.exit("FAIL: no selfish-mining power level earned revenue")
print(f"selfish: revenue {selfish[0]['revenue_share']:.3f} -> "
      f"{selfish[-1]['revenue_share']:.3f} over {len(selfish)} powers")
EOF
  rm -rf "$attdir"
  echo "=== [attacks] OK ==="
fi

if [[ "$STORAGE" == "1" ]]; then
  echo "=== [storage] bench_ledger_size (E19) in both DLT_STORAGE modes ==="
  cmake --build build -j "$JOBS" --target bench_ledger_size
  stodir="$(mktemp -d)"
  for mode in memory disk; do
    mkdir -p "$stodir/$mode"
    echo "=== [storage] DLT_STORAGE=$mode ==="
    (cd "$stodir/$mode" &&
     env DLT_STORAGE="$mode" "$OLDPWD/build/bench/bench_ledger_size" \
       > bench_stdout.txt) || {
      echo "FAIL: bench_ledger_size ($mode mode) gates failed" >&2
      tail -n 40 "$stodir/$mode/bench_stdout.txt" >&2
      exit 1
    }
  done
  echo "=== [storage] memory-vs-disk report equality (determinism contract) ==="
  python3 tools/bench_diff.py --exact --quiet \
    --ignore metrics.gauges.storage.segments \
    "$stodir/memory/BENCH_ledger_size.json" \
    "$stodir/disk/BENCH_ledger_size.json"
  echo "=== [storage] §V ordering on real bytes ==="
  python3 - "$stodir/disk/BENCH_ledger_size.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
order = report["ordering"]
utxo, account, lattice = (order["utxo_full_log"],
                          order["account_pruned_log"],
                          order["lattice_pruned_log"])
if not (utxo > account > lattice):
    sys.exit(f"FAIL: §V ordering violated: UTXO {utxo} B, "
             f"account {account} B, lattice {lattice} B")
print(f"UTXO archival {utxo} B > account state-pruned {account} B "
      f"> lattice head-only {lattice} B")
for row in report["systems"]:
    s = row["storage"]
    if s["log_bytes_pruned"] >= s["log_bytes_full"]:
        sys.exit(f"FAIL: {row['system']} pruning did not shrink the log")
    print(f"{row['system']}: log {s['log_bytes_full']} -> "
          f"{s['log_bytes_pruned']} B, reclaimed {s['pruned_bytes']} B")
ob = report["overbudget"]
if not ob["exceeds_budget"]:
    sys.exit("FAIL: overbudget ledger did not outgrow its RAM budget")
print(f"overbudget: log {ob['log_bytes']} B > budget {ob['budget_bytes']} B")
EOF
  rm -rf "$stodir"
  echo "=== [storage] OK ==="
fi

if [[ "$TRAFFIC" == "1" ]]; then
  echo "=== [traffic] bench_openloop (E20) ==="
  cmake --build build -j "$JOBS" --target bench_openloop
  trafdir="$(mktemp -d)"
  (cd "$trafdir" && "$OLDPWD/build/bench/bench_openloop" > bench_stdout.txt) || {
    echo "FAIL: bench_openloop gates failed" >&2
    tail -n 40 "$trafdir/bench_stdout.txt" >&2
    exit 1
  }
  echo "=== [traffic] reconciliation + saturation + per-class histograms ==="
  python3 - "$trafdir/BENCH_openloop.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
rows = report["sweep"]
systems = {}
for row in rows:
    adm = row["admission"]
    total = (adm["admitted"] + adm["rejected"] + adm["evicted"]
             + adm["backpressured"])
    if not adm["reconciles"] or adm["submitted"] != total:
        sys.exit(f"FAIL: {row['system']} @{row['offered_tps']} tx/s does not "
                 f"reconcile: {adm['submitted']} != {total}")
    systems.setdefault(row["system"], []).append(row)
if len(systems) < 3:
    sys.exit(f"FAIL: swept {sorted(systems)} ledgers, need chain+lattice+tangle")
for system, swept in systems.items():
    top = max(swept, key=lambda r: r["offered_tps"])
    adm = top["admission"]
    if top["fired_tps"] <= top["achieved_tps"]:
        sys.exit(f"FAIL: {system} top point not saturated "
                 f"({top['fired_tps']:.1f} <= {top['achieved_tps']:.1f} tx/s)")
    if adm["evicted"] + adm["backpressured"] == 0:
        sys.exit(f"FAIL: {system} top point shows no admission pressure")
    classes = top["classes"]
    if len(classes) < 2 or any(c["count"] == 0 for c in classes):
        sys.exit(f"FAIL: {system} per-class latency histograms incomplete: "
                 f"{[(c['class'], c['count']) for c in classes]}")
    p99s = " ".join(f"c{c['class']}:{c['p99_s']:.1f}s" for c in classes)
    print(f"{system}: offered {top['fired_tps']:.1f} > achieved "
          f"{top['achieved_tps']:.1f} tx/s, evicted {adm['evicted']}, "
          f"backpressured {adm['backpressured']}, class p99 {p99s}")
EOF
  rm -rf "$trafdir"
  echo "=== [traffic] OK ==="
fi

if [[ "$PERF" == "1" ]]; then
  echo "=== [perf] configure + build (Release) ==="
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j "$JOBS" --target bench_simcore bench_hotpath
  echo "=== [perf] bench_simcore (fire-order differential + speedup gate) ==="
  perfdir="$(mktemp -d)"
  (cd "$perfdir" && "$OLDPWD/build-perf/bench/bench_simcore")
  echo "=== [perf] bench_hotpath ==="
  (cd "$perfdir" && "$OLDPWD/build-perf/bench/bench_hotpath" >/dev/null)
  python3 - "$perfdir/BENCH_simcore.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
speedup = report["perf"]["speedup_vs_legacy"]
identical = report["deterministic"]["fire_order_identical"]
print(f"slab scheduler: {speedup:.2f}x legacy, fire order identical: {identical}")
if not identical:
    sys.exit("FAIL: fire order diverged from the legacy scheduler")
if speedup < 2.0:
    sys.exit(f"FAIL: schedule/fire speedup {speedup:.2f}x below the 2.0x gate")
EOF
  rm -rf "$perfdir"
  echo "=== [perf] OK ==="
fi

if [[ "$LATENCY" == "1" ]]; then
  echo "=== [latency] trace_plot selftest ==="
  latdir="$(mktemp -d)"
  (cd "$latdir" && python3 "$OLDPWD/tools/trace_plot.py" --selftest)
  echo "=== [latency] traced tangle bench -> trace_plot pipeline ==="
  cmake --build build -j "$JOBS" --target bench_throughput_tangle
  (cd "$latdir" && DLT_TRACE=1 "$OLDPWD/build/bench/bench_throughput_tangle" \
    > bench_stdout.txt)
  grep -q "Lifecycle submit->confirm" "$latdir/bench_stdout.txt" || {
    echo "FAIL: bench printed no lifecycle latency summary" >&2; exit 1; }
  (cd "$latdir" && python3 "$OLDPWD/tools/trace_plot.py" \
    TRACE_throughput_tangle.jsonl --out latency_gate)
  # The CDF table must contain real data rows (non-zero confirmed count).
  python3 - "$latdir/latency_gate_cdf.txt" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"submit_to_confirm\s+(\d+)", text)
if not m or int(m.group(1)) == 0:
    sys.exit("FAIL: latency CDF has no confirmed transactions")
print(f"latency CDF: {m.group(1)} confirmed txs")
EOF
  for f in latency_gate_timeline.svg latency_gate_cdf.svg; do
    [[ -s "$latdir/$f" ]] || { echo "FAIL: $f missing or empty" >&2; exit 1; }
  done
  echo "=== [latency] bench_diff direction check ==="
  cat > "$latdir/lat_old.json" <<'EOF'
{"metrics":{"histograms":{"latency.submit_to_confirm":{"count":10,"p99":1.0}}}}
EOF
  cat > "$latdir/lat_new.json" <<'EOF'
{"metrics":{"histograms":{"latency.submit_to_confirm":{"count":5,"p99":2.0}}}}
EOF
  if python3 tools/bench_diff.py "$latdir/lat_old.json" "$latdir/lat_new.json" \
      > "$latdir/lat_diff.txt" 2>&1; then
    echo "FAIL: bench_diff accepted a latency regression" >&2
    cat "$latdir/lat_diff.txt" >&2
    exit 1
  fi
  grep -q "latency.submit_to_confirm.p99" "$latdir/lat_diff.txt" || {
    echo "FAIL: bench_diff did not flag the latency p99 increase" >&2; exit 1; }
  grep -q "latency.submit_to_confirm.count" "$latdir/lat_diff.txt" || {
    echo "FAIL: bench_diff did not flag the confirmed-count drop" >&2; exit 1; }
  rm -rf "$latdir"
  echo "=== [latency] OK ==="
fi

if [[ "$TSAN" == "1" ]]; then
  run_pass tsan build-tsan -DDLT_SANITIZE=thread
fi

if [[ "$FAST" == "0" ]]; then
  run_pass asan build-asan -DDLT_SANITIZE=address
  run_pass ubsan build-ubsan -DDLT_SANITIZE=undefined
fi

echo "All checks passed."
