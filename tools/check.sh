#!/usr/bin/env bash
# One-shot gate: tier-1 build + tests, then the same suite under
# AddressSanitizer and UndefinedBehaviorSanitizer.
#
#   tools/check.sh                # all three passes
#   tools/check.sh --fast         # tier-1 only
#   tools/check.sh --determinism  # tier-1 + parallel-validation gate
#
# Each pass uses its own build directory so sanitizer flags never leak
# into the primary build/ tree. --determinism replays the same seed at
# two worker counts and requires identical metrics + byte-identical
# traces (tools/determinism_gate.sh).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
DETERMINISM=0
[[ "${1:-}" == "--fast" ]] && FAST=1
[[ "${1:-}" == "--determinism" ]] && { FAST=1; DETERMINISM=1; }

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== [$label] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$label] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$label] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$label] OK ==="
}

run_pass tier-1 build

if [[ "$DETERMINISM" == "1" ]]; then
  tools/determinism_gate.sh build
fi

if [[ "$FAST" == "0" ]]; then
  run_pass asan build-asan -DDLT_SANITIZE=address
  run_pass ubsan build-ubsan -DDLT_SANITIZE=undefined
fi

echo "All checks passed."
