#!/usr/bin/env bash
# One-shot gate: tier-1 build + tests, then the same suite under
# AddressSanitizer and UndefinedBehaviorSanitizer.
#
#   tools/check.sh            # all three passes
#   tools/check.sh --fast     # tier-1 only
#
# Each pass uses its own build directory so sanitizer flags never leak
# into the primary build/ tree.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== [$label] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$label] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$label] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$label] OK ==="
}

run_pass tier-1 build

if [[ "$FAST" == "0" ]]; then
  run_pass asan build-asan -DDLT_SANITIZE=address
  run_pass ubsan build-ubsan -DDLT_SANITIZE=undefined
fi

echo "All checks passed."
