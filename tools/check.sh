#!/usr/bin/env bash
# One-shot gate: tier-1 build + tests, then the same suite under
# AddressSanitizer and UndefinedBehaviorSanitizer.
#
#   tools/check.sh                # tier-1 + asan + ubsan
#   tools/check.sh --fast         # tier-1 only
#   tools/check.sh --determinism  # tier-1 + parallel-pipeline gates
#   tools/check.sh --tsan         # tier-1 + ThreadSanitizer pass
#   tools/check.sh --perf         # tier-1 + Release perf gate
#
# Flags combine: `tools/check.sh --determinism --tsan` runs the tier-1
# suite once, then both extra passes in one invocation. Any extra flag
# implies --fast (the asan/ubsan pair stays opt-out via the plain run).
#
# Each pass uses its own build directory so sanitizer flags never leak
# into the primary build/ tree. --determinism replays the same seed at
# two worker counts — for both the stateless validation pipeline and the
# conflict-group state sharding (DLT_PARALLEL_STATE=1) — and requires
# identical metrics + byte-identical traces (tools/determinism_gate.sh).
# --tsan exercises the verify-pool data paths (sharded validation, batch
# verification, sharded state application) under ThreadSanitizer; it is
# split from the default run because TSan is an order of magnitude
# slower than the tier-1 suite.
# --perf builds bench_simcore and bench_hotpath in a Release tree
# (build-perf) and gates on the recorded scheduler speedup: the slab
# engine must hold >= 2x events/sec over the embedded legacy scheduler.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
DETERMINISM=0
TSAN=0
PERF=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --determinism) FAST=1; DETERMINISM=1 ;;
    --tsan) FAST=1; TSAN=1 ;;
    --perf) FAST=1; PERF=1 ;;
    *)
      echo "usage: tools/check.sh [--fast] [--determinism] [--tsan] [--perf]" >&2
      exit 2
      ;;
  esac
done

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== [$label] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$label] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$label] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$label] OK ==="
}

run_pass tier-1 build

if [[ "$DETERMINISM" == "1" ]]; then
  cmake --build build -j "$JOBS" --target bench_throughput_chain \
    bench_throughput_dag bench_throughput_tangle
  tools/determinism_gate.sh build
fi

if [[ "$PERF" == "1" ]]; then
  echo "=== [perf] configure + build (Release) ==="
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j "$JOBS" --target bench_simcore bench_hotpath
  echo "=== [perf] bench_simcore (fire-order differential + speedup gate) ==="
  perfdir="$(mktemp -d)"
  (cd "$perfdir" && "$OLDPWD/build-perf/bench/bench_simcore")
  echo "=== [perf] bench_hotpath ==="
  (cd "$perfdir" && "$OLDPWD/build-perf/bench/bench_hotpath" >/dev/null)
  python3 - "$perfdir/BENCH_simcore.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
speedup = report["perf"]["speedup_vs_legacy"]
identical = report["deterministic"]["fire_order_identical"]
print(f"slab scheduler: {speedup:.2f}x legacy, fire order identical: {identical}")
if not identical:
    sys.exit("FAIL: fire order diverged from the legacy scheduler")
if speedup < 2.0:
    sys.exit(f"FAIL: schedule/fire speedup {speedup:.2f}x below the 2.0x gate")
EOF
  rm -rf "$perfdir"
  echo "=== [perf] OK ==="
fi

if [[ "$TSAN" == "1" ]]; then
  run_pass tsan build-tsan -DDLT_SANITIZE=thread
fi

if [[ "$FAST" == "0" ]]; then
  run_pass asan build-asan -DDLT_SANITIZE=address
  run_pass ubsan build-ubsan -DDLT_SANITIZE=undefined
fi

echo "All checks passed."
