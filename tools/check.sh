#!/usr/bin/env bash
# One-shot gate: tier-1 build + tests, then the same suite under
# AddressSanitizer and UndefinedBehaviorSanitizer.
#
#   tools/check.sh                # tier-1 + asan + ubsan
#   tools/check.sh --fast         # tier-1 only
#   tools/check.sh --determinism  # tier-1 + parallel-pipeline gates
#   tools/check.sh --tsan         # tier-1 + ThreadSanitizer pass
#
# Flags combine: `tools/check.sh --determinism --tsan` runs the tier-1
# suite once, then both extra passes in one invocation. Any extra flag
# implies --fast (the asan/ubsan pair stays opt-out via the plain run).
#
# Each pass uses its own build directory so sanitizer flags never leak
# into the primary build/ tree. --determinism replays the same seed at
# two worker counts — for both the stateless validation pipeline and the
# conflict-group state sharding (DLT_PARALLEL_STATE=1) — and requires
# identical metrics + byte-identical traces (tools/determinism_gate.sh).
# --tsan exercises the verify-pool data paths (sharded validation, batch
# verification, sharded state application) under ThreadSanitizer; it is
# split from the default run because TSan is an order of magnitude
# slower than the tier-1 suite.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
DETERMINISM=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --determinism) FAST=1; DETERMINISM=1 ;;
    --tsan) FAST=1; TSAN=1 ;;
    *)
      echo "usage: tools/check.sh [--fast] [--determinism] [--tsan]" >&2
      exit 2
      ;;
  esac
done

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== [$label] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$label] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$label] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "=== [$label] OK ==="
}

run_pass tier-1 build

if [[ "$DETERMINISM" == "1" ]]; then
  cmake --build build -j "$JOBS" --target bench_throughput_chain \
    bench_throughput_dag bench_throughput_tangle
  tools/determinism_gate.sh build
fi

if [[ "$TSAN" == "1" ]]; then
  run_pass tsan build-tsan -DDLT_SANITIZE=thread
fi

if [[ "$FAST" == "0" ]]; then
  run_pass asan build-asan -DDLT_SANITIZE=address
  run_pass ubsan build-ubsan -DDLT_SANITIZE=undefined
fi

echo "All checks passed."
