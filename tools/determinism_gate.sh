#!/usr/bin/env bash
# Determinism gate for the parallel validation pipeline: the same seed run
# at two different worker counts must emit byte-identical event traces and
# an identical BENCH_*.json metrics section. Only wall-clock histograms
# (profile.*, *_us) and the deliberately run-dependent
# parallel.validate.workers gauge are exempt.
#
#   tools/determinism_gate.sh [build-dir]   # default: build
#
# Invoked by tools/check.sh --determinism, or via ctest when configured
# with -DDLT_DETERMINISM_GATE=ON.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[[ "$BUILD" = /* ]] || BUILD="$(pwd)/$BUILD"
BIN="$BUILD/bench/bench_throughput_chain"
DIFF="$(pwd)/tools/bench_diff.py"

if [[ ! -x "$BIN" ]]; then
  echo "determinism gate: $BIN not built (build the bench targets first)" >&2
  exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

for threads in 2 4; do
  dir="$work/w$threads"
  mkdir -p "$dir"
  echo "=== [determinism] bench_throughput_chain @ DLT_VERIFY_THREADS=$threads ==="
  (cd "$dir" && DLT_VERIFY_THREADS="$threads" DLT_TRACE=1 "$BIN" >/dev/null)
done

echo "=== [determinism] metrics: exact diff (wall-clock + worker gauge exempt) ==="
python3 "$DIFF" --exact --quiet \
  --ignore metrics.gauges.parallel.validate.workers \
  "$work/w2/BENCH_throughput_chain.json" \
  "$work/w4/BENCH_throughput_chain.json"

echo "=== [determinism] trace: byte compare ==="
cmp "$work/w2/TRACE_throughput_chain.jsonl" \
    "$work/w4/TRACE_throughput_chain.jsonl"
echo "traces byte-identical"
echo "=== [determinism] OK ==="
