#!/usr/bin/env bash
# Determinism gate for the parallel validation pipeline: the same seed run
# at two different worker counts must emit byte-identical event traces and
# an identical BENCH_*.json metrics section. Only wall-clock histograms
# (profile.*, *_us) and the deliberately run-dependent
# parallel.validate.workers gauge are exempt.
#
# Covers both ledger-paradigm drivers of the unified cluster engine:
# bench_throughput_chain (block-based) and bench_throughput_tangle (DAG).
#
#   tools/determinism_gate.sh [build-dir]   # default: build
#
# Invoked by tools/check.sh --determinism, or via ctest when configured
# with -DDLT_DETERMINISM_GATE=ON.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[[ "$BUILD" = /* ]] || BUILD="$(pwd)/$BUILD"
DIFF="$(pwd)/tools/bench_diff.py"

# gate <bench-name>: run the bench at 2 and 4 verify workers, then demand
# identical metrics and byte-identical traces.
gate() {
  local bench="$1"
  local bin="$BUILD/bench/$bench"

  if [[ ! -x "$bin" ]]; then
    echo "determinism gate: $bin not built (build the bench targets first)" >&2
    exit 2
  fi

  local work
  work="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand $work now; one trap per subshell run
  trap "rm -rf '$work'" RETURN

  for threads in 2 4; do
    local dir="$work/w$threads"
    mkdir -p "$dir"
    echo "=== [determinism] $bench @ DLT_VERIFY_THREADS=$threads ==="
    (cd "$dir" && DLT_VERIFY_THREADS="$threads" DLT_TRACE=1 "$bin" >/dev/null)
  done

  echo "=== [determinism] $bench metrics: exact diff (wall-clock + worker gauge exempt) ==="
  python3 "$DIFF" --exact --quiet \
    --ignore metrics.gauges.parallel.validate.workers \
    "$work/w2/BENCH_${bench#bench_}.json" \
    "$work/w4/BENCH_${bench#bench_}.json"

  echo "=== [determinism] $bench trace: byte compare ==="
  cmp "$work/w2/TRACE_${bench#bench_}.jsonl" \
      "$work/w4/TRACE_${bench#bench_}.jsonl"
  echo "traces byte-identical"
}

gate bench_throughput_chain
gate bench_throughput_tangle
echo "=== [determinism] OK ==="
