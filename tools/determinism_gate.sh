#!/usr/bin/env bash
# Determinism gate for the parallel pipelines: the same seed run at two
# different worker counts must emit byte-identical event traces and an
# identical BENCH_*.json metrics section. Only wall-clock histograms
# (profile.*, *_us) and the deliberately run-dependent
# parallel.*.workers gauges are exempt.
#
# Two legs per paradigm:
#   validation — DLT_VERIFY_THREADS alone (stateless verdict sharding),
#                on the two drivers with crypto checks in the hot path.
#   state      — DLT_PARALLEL_STATE=1 on top (conflict-group sharding of
#                stateful application, ISSUE 5), on all three throughput
#                benches: chain (block), dag (lattice), tangle.
#   storage    — DLT_STORAGE=memory vs disk (pluggable persistence,
#                ISSUE 9): flipping the storage mode must leave metrics
#                and traces byte-identical.
#
# bench_openloop (E20, ISSUE 10) runs all three legs too: the open-loop
# traffic engine and the admission queues must replay identically across
# worker counts, state sharding, and storage modes.
#
#   tools/determinism_gate.sh [build-dir]   # default: build
#
# Invoked by tools/check.sh --determinism, or via ctest when configured
# with -DDLT_DETERMINISM_GATE=ON.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD="${1:-build}"
[[ "$BUILD" = /* ]] || BUILD="$(pwd)/$BUILD"
DIFF="$(pwd)/tools/bench_diff.py"

# gate <bench-name> [state]: run the bench at 2 and 4 verify workers,
# then demand identical metrics and byte-identical traces. With the
# "state" leg, DLT_PARALLEL_STATE=1 shards stateful application by
# conflict groups as well, and the parallel.state.workers gauge joins
# the exemption list (its counters stay under exact compare).
gate() {
  local bench="$1"
  local leg="${2:-validation}"
  local bin="$BUILD/bench/$bench"

  if [[ ! -x "$bin" ]]; then
    echo "determinism gate: $bin not built (build the bench targets first)" >&2
    exit 2
  fi

  local -a env_extra=()
  local -a ignore=(--ignore metrics.gauges.parallel.validate.workers)
  if [[ "$leg" == "state" ]]; then
    env_extra=(DLT_PARALLEL_STATE=1)
    ignore+=(--ignore metrics.gauges.parallel.state.workers)
  fi

  local work
  work="$(mktemp -d)"
  # shellcheck disable=SC2064  # expand $work now; one trap per subshell run
  trap "rm -rf '$work'" RETURN

  for threads in 2 4; do
    local dir="$work/w$threads"
    mkdir -p "$dir"
    echo "=== [determinism/$leg] $bench @ DLT_VERIFY_THREADS=$threads ==="
    (cd "$dir" &&
     env "${env_extra[@]}" DLT_VERIFY_THREADS="$threads" DLT_TRACE=1 \
       "$bin" >/dev/null)
  done

  echo "=== [determinism/$leg] $bench metrics: exact diff (wall-clock + worker gauges exempt) ==="
  python3 "$DIFF" --exact --quiet "${ignore[@]}" \
    "$work/w2/BENCH_${bench#bench_}.json" \
    "$work/w4/BENCH_${bench#bench_}.json"

  echo "=== [determinism/$leg] $bench trace: byte compare ==="
  cmp "$work/w2/TRACE_${bench#bench_}.jsonl" \
      "$work/w4/TRACE_${bench#bench_}.jsonl"
  echo "traces byte-identical"
}

# gate_storage <bench-name>: run the same bench with the storage layer in
# memory and in disk mode (DLT_STORAGE, ISSUE 9) and demand identical
# metrics and byte-identical traces — the storage determinism contract:
# flipping the persistence mode may never shift a trace or a metric.
# Absolute storage paths never appear in the reports (string leaves are
# not compared by bench_diff). Segment counts are mode-independent by
# construction, but are exempted so a future segment-size tweak can't
# mask a real memory/disk divergence behind rotation arithmetic.
gate_storage() {
  local bench="$1"
  local bin="$BUILD/bench/$bench"

  if [[ ! -x "$bin" ]]; then
    echo "determinism gate: $bin not built (build the bench targets first)" >&2
    exit 2
  fi

  local -a ignore=(--ignore metrics.gauges.parallel.validate.workers
                   --ignore metrics.gauges.storage.segments)

  local work
  work="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$work'" RETURN

  for mode in memory disk; do
    local dir="$work/$mode"
    mkdir -p "$dir"
    echo "=== [determinism/storage] $bench @ DLT_STORAGE=$mode ==="
    (cd "$dir" &&
     env DLT_STORAGE="$mode" DLT_VERIFY_THREADS=2 DLT_TRACE=1 \
       "$bin" >/dev/null)
  done

  echo "=== [determinism/storage] $bench metrics: exact diff (segment counts exempt) ==="
  python3 "$DIFF" --exact --quiet "${ignore[@]}" \
    "$work/memory/BENCH_${bench#bench_}.json" \
    "$work/disk/BENCH_${bench#bench_}.json"

  echo "=== [determinism/storage] $bench trace: byte compare ==="
  cmp "$work/memory/TRACE_${bench#bench_}.jsonl" \
      "$work/disk/TRACE_${bench#bench_}.jsonl"
  echo "traces byte-identical across storage modes"
}

# gate_simcore: the scheduler microbench embeds a fire-order differential
# against the legacy engine (exits nonzero on divergence) and writes its
# checksums into BENCH_simcore.json `deterministic`; two runs must agree
# exactly there. The `perf` section is wall-clock and exempt.
gate_simcore() {
  local bin="$BUILD/bench/bench_simcore"
  if [[ ! -x "$bin" ]]; then
    echo "determinism gate: $bin not built (build the bench targets first)" >&2
    exit 2
  fi
  local work
  work="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$work'" RETURN
  for run in 1 2; do
    mkdir -p "$work/r$run"
    echo "=== [determinism/simcore] bench_simcore run $run ==="
    (cd "$work/r$run" && "$bin" >/dev/null)
  done
  echo "=== [determinism/simcore] metrics: exact diff (perf section exempt) ==="
  python3 "$DIFF" --exact --quiet --ignore perf. \
    "$work/r1/BENCH_simcore.json" "$work/r2/BENCH_simcore.json"
}

gate bench_throughput_chain
gate bench_throughput_tangle
gate bench_adversarial
gate bench_throughput_chain state
gate bench_throughput_dag state
gate bench_throughput_tangle state
gate bench_adversarial state
gate bench_openloop
gate bench_openloop state
gate_storage bench_throughput_chain
gate_storage bench_throughput_tangle
gate_storage bench_openloop
gate_simcore
echo "=== [determinism] OK ==="
